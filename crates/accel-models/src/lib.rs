//! Analytical models of published neuromorphic accelerators.
//!
//! Section IV-C of the paper compares SpikeStream against four accelerators
//! evaluated in the NeuroRVcore paper: Intel Loihi, ODIN, LSMCore and
//! NeuroRVcore itself, on the sixth layer of S-VGG11 over 500 timesteps.
//! The comparison uses each chip's published peak synaptic-operation rate
//! and energy efficiency; this crate reproduces that comparison as an
//! analytical model: latency = synaptic operations / effective SOP rate,
//! energy = synaptic operations x energy per SOP (plus idle power x time).
//!
//! The figures of merit are taken from the publications cited by the paper
//! and are intentionally kept as plain data so they can be adjusted.

use serde::{Deserialize, Serialize};

/// A neuromorphic accelerator's published figures of merit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorSpec {
    /// Chip name.
    pub name: String,
    /// Peak synaptic operations per second, in GSOP/s.
    pub peak_gsop: f64,
    /// Fraction of the peak rate sustained on the sparse VGG workload.
    pub sustained_fraction: f64,
    /// Energy per synaptic operation in picojoules.
    pub pj_per_sop: f64,
    /// Idle/leakage power in watts (charged over the whole run).
    pub idle_power_w: f64,
    /// Arithmetic precision in bits.
    pub precision_bits: u32,
    /// Technology node in nanometres.
    pub technology_nm: u32,
}

impl AcceleratorSpec {
    /// Intel Loihi (14 nm GALS many-core, 1-64 bit synapses).
    pub fn loihi() -> Self {
        AcceleratorSpec {
            name: "Loihi".into(),
            peak_gsop: 37.5,
            sustained_fraction: 0.30,
            pj_per_sop: 23.6,
            idle_power_w: 0.031,
            precision_bits: 8,
            technology_nm: 14,
        }
    }

    /// ODIN (28 nm, 64-neuron online-learning core, 4-bit weights).
    pub fn odin() -> Self {
        AcceleratorSpec {
            name: "ODIN".into(),
            peak_gsop: 0.038,
            sustained_fraction: 0.55,
            pj_per_sop: 12.7,
            idle_power_w: 0.0005,
            precision_bits: 4,
            technology_nm: 28,
        }
    }

    /// LSMCore (40 nm, 1024-LIF-neuron liquid state machine core, 4-bit).
    pub fn lsmcore() -> Self {
        AcceleratorSpec {
            name: "LSMCore".into(),
            peak_gsop: 400.0,
            sustained_fraction: 0.30,
            pj_per_sop: 22.0,
            idle_power_w: 0.25,
            precision_bits: 4,
            technology_nm: 40,
        }
    }

    /// NeuroRVcore (28 nm RISC-V core with a neuromorphic ISA extension).
    pub fn neurorvcore() -> Self {
        AcceleratorSpec {
            name: "NeuroRVcore".into(),
            peak_gsop: 128.0,
            sustained_fraction: 0.25,
            pj_per_sop: 26.0,
            idle_power_w: 0.09,
            precision_bits: 4,
            technology_nm: 28,
        }
    }

    /// All four accelerators compared in the paper.
    pub fn soa() -> Vec<AcceleratorSpec> {
        vec![Self::loihi(), Self::odin(), Self::lsmcore(), Self::neurorvcore()]
    }

    /// Sustained synaptic-operation rate in SOP/s.
    pub fn sustained_sops(&self) -> f64 {
        self.peak_gsop * 1e9 * self.sustained_fraction
    }

    /// Run the accelerator model on a workload of `synops` synaptic
    /// operations and return its predicted latency and energy.
    pub fn run(&self, synops: u64) -> AcceleratorResult {
        let latency_s = synops as f64 / self.sustained_sops();
        let dynamic_j = synops as f64 * self.pj_per_sop * 1e-12;
        let energy_j = dynamic_j + self.idle_power_w * latency_s;
        AcceleratorResult { name: self.name.clone(), latency_s, energy_j, spec: self.clone() }
    }
}

/// Predicted latency and energy of an accelerator on a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorResult {
    /// Chip name.
    pub name: String,
    /// Predicted latency in seconds.
    pub latency_s: f64,
    /// Predicted energy in joules.
    pub energy_j: f64,
    /// The spec used for the prediction.
    pub spec: AcceleratorSpec,
}

impl AcceleratorResult {
    /// Latency in milliseconds (the unit of Fig. 5a).
    pub fn latency_ms(&self) -> f64 {
        self.latency_s * 1e3
    }

    /// Energy in millijoules (the unit of Fig. 5b).
    pub fn energy_mj(&self) -> f64 {
        self.energy_j * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synaptic operations of the 6th S-VGG11 layer over 500 timesteps with
    /// ~10% input firing: 8x8 x 512 outputs x 3x3x512 x 0.10 x 500.
    fn layer6_synops_500ts() -> u64 {
        (8.0 * 8.0 * 512.0 * 9.0 * 512.0 * 0.10 * 500.0) as u64
    }

    #[test]
    fn lsmcore_is_the_fastest_and_odin_the_slowest() {
        let synops = layer6_synops_500ts();
        let results: Vec<AcceleratorResult> =
            AcceleratorSpec::soa().iter().map(|a| a.run(synops)).collect();
        let fastest =
            results.iter().min_by(|a, b| a.latency_s.partial_cmp(&b.latency_s).unwrap()).unwrap();
        let slowest =
            results.iter().max_by(|a, b| a.latency_s.partial_cmp(&b.latency_s).unwrap()).unwrap();
        assert_eq!(fastest.name, "LSMCore");
        assert_eq!(slowest.name, "ODIN");
    }

    #[test]
    fn lsmcore_latency_is_in_the_tens_of_milliseconds() {
        // The paper reports 46.08 ms for LSMCore on this workload.
        let r = AcceleratorSpec::lsmcore().run(layer6_synops_500ts());
        assert!(
            r.latency_ms() > 10.0 && r.latency_ms() < 150.0,
            "LSMCore latency {} ms",
            r.latency_ms()
        );
    }

    #[test]
    fn loihi_latency_is_hundreds_of_milliseconds() {
        // The paper derives ~510 ms for Loihi (2.38x slower than SpikeStream
        // FP8 at 217 ms).
        let r = AcceleratorSpec::loihi().run(layer6_synops_500ts());
        assert!(
            r.latency_ms() > 150.0 && r.latency_ms() < 2000.0,
            "Loihi latency {} ms",
            r.latency_ms()
        );
    }

    #[test]
    fn energy_combines_dynamic_and_idle_terms() {
        let spec = AcceleratorSpec::lsmcore();
        let small = spec.run(1_000_000);
        let large = spec.run(1_000_000_000);
        assert!(large.energy_j > small.energy_j * 500.0);
        assert!(small.energy_j > 0.0);
    }

    #[test]
    fn soa_list_contains_all_four_chips() {
        let names: Vec<String> = AcceleratorSpec::soa().into_iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["Loihi", "ODIN", "LSMCore", "NeuroRVcore"]);
    }
}
