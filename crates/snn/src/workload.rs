//! Synthetic workload generation with calibrated firing statistics.
//!
//! The paper evaluates a trained S-VGG11 on a batch of 128 CIFAR-10 images
//! and reports, per layer, the *average firing activity* of the input
//! feature maps (Fig. 3a). Since all evaluation metrics — memory footprint,
//! stream lengths, FPU utilization, runtime, energy — depend on the layer
//! shapes and on those firing statistics rather than on classification
//! accuracy, the reproduction generates spike maps directly from a
//! per-layer firing profile.
//!
//! Dynamic sparsity across the batch is modelled by drawing each sample's
//! firing rate from a normal distribution around the profile value, which
//! reproduces the standard deviations reported in the paper's figures.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::encoding::{synthetic_image, TemporalEncoding};
use crate::layer::LayerKind;
use crate::model::Network;
use crate::tensor::{SpikeMap, Tensor3, TensorShape};

/// How one batch sample is turned into layer inputs.
///
/// * [`WorkloadMode::Synthetic`] is the paper's single-shot evaluation:
///   every layer's input spike map is sampled independently from the
///   calibrated [`FiringProfile`] (the firing statistics are *injected*).
/// * [`WorkloadMode::Temporal`] runs a real T-timestep inference: the
///   input image is encoded per step, LIF membranes persist between steps,
///   and the spikes layer N emits at step t *are* layer N+1's input at
///   step t (the firing statistics are *emergent*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadMode {
    /// One synthetic evaluation per sample from the firing profile.
    Synthetic,
    /// A T-timestep temporal pipeline with persistent membrane state.
    Temporal {
        /// Number of inference timesteps (>= 1).
        timesteps: usize,
        /// How the dense input image becomes a per-step layer-0 input.
        encoding: TemporalEncoding,
    },
}

impl WorkloadMode {
    /// Number of timesteps one sample evaluates (1 for synthetic runs).
    pub fn timesteps(&self) -> usize {
        match self {
            WorkloadMode::Synthetic => 1,
            WorkloadMode::Temporal { timesteps, .. } => (*timesteps).max(1),
        }
    }

    /// Whether the mode runs the temporal pipeline.
    pub fn is_temporal(&self) -> bool {
        matches!(self, WorkloadMode::Temporal { .. })
    }
}

impl Default for WorkloadMode {
    /// The profile-driven single-shot evaluation of the paper.
    fn default() -> Self {
        WorkloadMode::Synthetic
    }
}

/// Expected per-timestep firing-rate modulation of a temporal run.
///
/// Starting from resting membranes, the network's activity ramps up over
/// the first timesteps as the LIF potentials charge toward threshold; the
/// steady state matches the calibrated profile rate. The analytic backend
/// integrates per-step programs from these expected rates, mirroring the
/// emergent per-step sparsity the cycle-level backend measures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemporalSparsityModel {
    /// Residual charge fraction per step (the LIF decay constant); the
    /// step-`t` activity factor is `1 - warmup^(t+1)`.
    pub warmup: f64,
}

impl TemporalSparsityModel {
    /// Model matching the default LIF decay (`alpha = 0.5`).
    pub fn calibrated() -> Self {
        TemporalSparsityModel { warmup: 0.5 }
    }

    /// Activity factor of timestep `step` in `[0, 1]`: `1 - warmup^(t+1)`,
    /// so step 0 under-fires and the factor converges to 1.
    pub fn step_factor(&self, step: usize) -> f64 {
        (1.0 - self.warmup.clamp(0.0, 1.0).powi(step as i32 + 1)).clamp(0.0, 1.0)
    }
}

impl Default for TemporalSparsityModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Per-layer input firing rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FiringProfile {
    /// Average firing rate of each layer's input ifmap (layer 0 first).
    /// Layer 0 receives a dense image, so its entry is the fraction of
    /// non-negligible pixels and is only used for reporting.
    pub rates: Vec<f64>,
    /// Relative standard deviation of the firing rate across batch samples.
    pub relative_std: f64,
}

impl FiringProfile {
    /// The firing-activity profile of the paper's S-VGG11 evaluation
    /// (read off Fig. 3a): moderate activity in the early layers, growing
    /// sparsity with depth, and extremely sparse fully connected inputs.
    pub fn paper_svgg11() -> Self {
        FiringProfile {
            rates: vec![1.0, 0.32, 0.24, 0.17, 0.12, 0.09, 0.04, 0.02],
            relative_std: 0.12,
        }
    }

    /// A uniform profile (every layer firing at `rate`), useful for sweeps.
    pub fn uniform(layers: usize, rate: f64) -> Self {
        FiringProfile { rates: vec![rate; layers], relative_std: 0.0 }
    }

    /// Firing rate of layer `layer`, clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` has no profile entry. A short profile used to fall
    /// back to a silent `0.1` default, which let a profile/network mismatch
    /// skew every downstream figure; the length is now validated up front
    /// (`Engine::new` checks it against the network) and an out-of-range
    /// query is a bug.
    pub fn rate(&self, layer: usize) -> f64 {
        match self.rates.get(layer) {
            Some(rate) => rate.clamp(0.0, 1.0),
            None => panic!(
                "firing profile has {} entries but layer {layer} was queried; \
                 the profile must cover every network layer",
                self.rates.len()
            ),
        }
    }

    /// Number of layers the profile covers.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether the profile covers no layers.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }
}

/// The complete input set of one network evaluation (one timestep of one
/// batch sample): the dense image for the encoding layer and a spike map
/// for every subsequent layer input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpikeWorkload {
    /// Dense RGB input of the first (spike-encoding) layer, padded.
    pub image: Tensor3,
    /// Input spike map of each non-encoding layer, padded for conv layers,
    /// flattened (`1 x 1 x F`) for fully connected layers. Entry 0
    /// corresponds to layer 1 (the first layer consuming spikes).
    pub layer_inputs: Vec<SpikeMap>,
    /// Sample index within the batch.
    pub sample: usize,
}

impl SpikeWorkload {
    /// Input spike map of network layer `layer` (1-based over spiking layers).
    ///
    /// # Panics
    ///
    /// Panics if `layer == 0` (the encoding layer consumes the dense image)
    /// or `layer` is out of range.
    pub fn spikes_for_layer(&self, layer: usize) -> &SpikeMap {
        assert!(layer >= 1, "layer 0 consumes the dense image, not spikes");
        &self.layer_inputs[layer - 1]
    }
}

/// Generator of [`SpikeWorkload`]s with calibrated firing statistics.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    profile: FiringProfile,
    seed: u64,
}

impl WorkloadGenerator {
    /// Create a generator from a firing profile and RNG seed.
    pub fn new(profile: FiringProfile, seed: u64) -> Self {
        WorkloadGenerator { profile, seed }
    }

    /// The firing profile in use.
    pub fn profile(&self) -> &FiringProfile {
        &self.profile
    }

    /// The per-sample RNG, deterministic in `(seed, sample)` alone.
    fn sample_rng(&self, sample: usize) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ (sample as u64).wrapping_mul(0x9e37_79b9))
    }

    /// Generate the workload of one batch sample for `network`.
    pub fn generate(&self, network: &Network, sample: usize) -> SpikeWorkload {
        let mut rng = self.sample_rng(sample);
        let mut layer_inputs = Vec::new();
        let mut image = Tensor3::zeros(TensorShape::new(1, 1, 1));

        for (idx, layer) in network.layers().iter().enumerate() {
            let input_shape = match &layer.kind {
                LayerKind::Conv(c) => c.padded_input(),
                LayerKind::AvgPool(p) => p.input,
                LayerKind::Linear(l) => TensorShape::new(1, 1, l.in_features),
            };
            if idx == 0 {
                image = image_for(layer, &mut rng);
                continue;
            }
            let base_rate = self.profile.rate(idx);
            let jitter = 1.0 + self.profile.relative_std * sample_gauss(&mut rng);
            let rate = (base_rate * jitter).clamp(0.0, 1.0);
            layer_inputs.push(random_spike_map(input_shape, rate, &mut rng, &layer.kind));
        }
        SpikeWorkload { image, layer_inputs, sample }
    }

    /// Generate only the padded input image of one batch sample — the
    /// temporal pipeline's entry point, which derives every subsequent
    /// layer input from real spike propagation instead of the profile.
    ///
    /// Bit-identical to the `image` field of [`WorkloadGenerator::generate`]
    /// for the same `(network, sample)`: the image is drawn first from the
    /// per-sample RNG in both paths.
    pub fn generate_image(&self, network: &Network, sample: usize) -> Tensor3 {
        let mut rng = self.sample_rng(sample);
        let layer = network.layers().first().expect("network has at least one layer");
        image_for(layer, &mut rng)
    }

    /// Generate a whole batch of workloads.
    pub fn generate_batch(&self, network: &Network, batch: usize) -> Vec<SpikeWorkload> {
        (0..batch).map(|s| self.generate(network, s)).collect()
    }
}

/// The dense, padded input image of the first layer: the interior comes
/// from the synthetic image generator, the border stays zero.
fn image_for<R: Rng>(layer: &crate::layer::Layer, rng: &mut R) -> Tensor3 {
    let (unpadded, padding) = match &layer.kind {
        LayerKind::Conv(c) => (c.input, c.padding),
        LayerKind::AvgPool(p) => (p.input, 0),
        LayerKind::Linear(l) => (TensorShape::new(1, 1, l.in_features), 0),
    };
    let inner = synthetic_image(unpadded, rng);
    crate::encoding::pad_image(&inner, padding)
}

/// Draw a standard-normal sample via the Box-Muller transform (avoids a
/// dependency on `rand_distr`).
fn sample_gauss<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample a spike map of the given shape realizing the target firing rate
/// exactly: `round(rate * eligible_positions)` spikes at uniformly random
/// positions. For convolutional inputs the padded border stays silent
/// (padding carries no spikes), so the rate applies to the interior.
///
/// Fixed-count sampling (rather than an independent Bernoulli draw per
/// position) keeps the realized spike count equal to the expectation the
/// analytic backend computes from the same rate — dynamic sparsity across
/// the batch comes from the per-sample rate jitter, not from sampling
/// noise.
fn random_spike_map<R: Rng>(
    shape: TensorShape,
    rate: f64,
    rng: &mut R,
    kind: &LayerKind,
) -> SpikeMap {
    let mut map = SpikeMap::silent(shape);
    let padding = match kind {
        LayerKind::Conv(c) => c.padding,
        LayerKind::AvgPool(_) | LayerKind::Linear(_) => 0,
    };
    let silent_border = shape.h > 2 * padding;
    let positions: Vec<(usize, usize)> = (0..shape.h)
        .flat_map(|h| (0..shape.w).map(move |w| (h, w)))
        .filter(|&(h, w)| {
            let in_border =
                h < padding || w < padding || h >= shape.h - padding || w >= shape.w - padding;
            !(in_border && silent_border)
        })
        .collect();
    let n = positions.len() * shape.c;
    if n == 0 {
        return map;
    }
    let target = ((n as f64 * rate).round() as usize).min(n);

    // Partial Fisher-Yates over the flattened eligible (position, channel)
    // slots: the first `target` entries are a uniform sample without
    // replacement.
    let mut slots: Vec<usize> = (0..n).collect();
    for i in 0..target {
        let j = rng.gen_range(i..n);
        slots.swap(i, j);
        let (h, w) = positions[slots[i] / shape.c];
        map.set(h, w, slots[i] % shape.c, true);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Network;

    #[test]
    fn paper_profile_is_monotonically_sparser() {
        let p = FiringProfile::paper_svgg11();
        assert_eq!(p.rates.len(), 8);
        for w in p.rates[1..].windows(2) {
            assert!(w[0] >= w[1], "firing activity decreases with depth");
        }
    }

    #[test]
    fn workload_matches_target_firing_rates() {
        let net = Network::svgg11(1);
        let gen = WorkloadGenerator::new(FiringProfile::paper_svgg11(), 7);
        let w = gen.generate(&net, 0);
        assert_eq!(w.layer_inputs.len(), net.len() - 1);
        // Layer 2 (conv3 input) should fire near its profile rate; the
        // border of the padded map is silent so compare against the
        // interior-adjusted expectation with a generous tolerance.
        let profile = FiringProfile::paper_svgg11();
        for (i, spikes) in w.layer_inputs.iter().enumerate().take(5) {
            let measured = spikes.firing_rate();
            let shape = spikes.shape();
            let interior = ((shape.h - 2) * (shape.w - 2)) as f64 / (shape.h * shape.w) as f64;
            let expected = profile.rate(i + 1) * interior;
            assert!(
                (measured - expected).abs() < 0.35 * expected + 0.01,
                "layer {} rate {measured} vs expected {expected}",
                i + 1
            );
        }
    }

    #[test]
    fn workloads_are_deterministic_per_seed_and_sample() {
        let net = Network::svgg11(1);
        let gen = WorkloadGenerator::new(FiringProfile::paper_svgg11(), 99);
        let a = gen.generate(&net, 3);
        let b = gen.generate(&net, 3);
        let c = gen.generate(&net, 4);
        assert_eq!(a, b);
        assert_ne!(a.layer_inputs[0], c.layer_inputs[0]);
    }

    #[test]
    fn batch_generation_produces_distinct_samples() {
        let net = Network::svgg11(1);
        let gen = WorkloadGenerator::new(FiringProfile::paper_svgg11(), 5);
        let batch = gen.generate_batch(&net, 4);
        assert_eq!(batch.len(), 4);
        let rates: Vec<f64> = batch.iter().map(|w| w.layer_inputs[0].firing_rate()).collect();
        assert!(rates.windows(2).any(|p| (p[0] - p[1]).abs() > 1e-6));
    }

    #[test]
    #[should_panic(expected = "dense image")]
    fn layer_zero_spikes_panic() {
        let net = Network::svgg11(1);
        let gen = WorkloadGenerator::new(FiringProfile::paper_svgg11(), 5);
        let w = gen.generate(&net, 0);
        let _ = w.spikes_for_layer(0);
    }

    #[test]
    fn uniform_profile() {
        let p = FiringProfile::uniform(4, 0.3);
        assert_eq!(p.rate(2), 0.3);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "firing profile has 4 entries but layer 99 was queried")]
    fn out_of_range_layer_rate_panics() {
        let p = FiringProfile::uniform(4, 0.3);
        let _ = p.rate(99);
    }

    #[test]
    fn generate_image_matches_the_full_workload_image() {
        let net = Network::svgg11(1);
        let gen = WorkloadGenerator::new(FiringProfile::paper_svgg11(), 17);
        for sample in [0, 3, 9] {
            assert_eq!(gen.generate_image(&net, sample), gen.generate(&net, sample).image);
        }
    }

    #[test]
    fn workload_mode_timesteps() {
        assert_eq!(WorkloadMode::Synthetic.timesteps(), 1);
        assert!(!WorkloadMode::Synthetic.is_temporal());
        let t = WorkloadMode::Temporal { timesteps: 4, encoding: TemporalEncoding::Rate };
        assert_eq!(t.timesteps(), 4);
        assert!(t.is_temporal());
        // A degenerate zero-step request still evaluates one step.
        let z = WorkloadMode::Temporal { timesteps: 0, encoding: TemporalEncoding::Direct };
        assert_eq!(z.timesteps(), 1);
    }

    #[test]
    fn temporal_sparsity_ramps_toward_the_profile_rate() {
        let m = TemporalSparsityModel::calibrated();
        assert!((m.step_factor(0) - 0.5).abs() < 1e-12);
        assert!(m.step_factor(1) > m.step_factor(0));
        assert!(m.step_factor(20) > 0.999);
        for t in 0..8 {
            let f = m.step_factor(t);
            assert!((0.0..=1.0).contains(&f));
        }
    }
}
