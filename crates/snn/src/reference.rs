//! Functional reference inference engine.
//!
//! This engine computes SNN layer outputs directly in `f32` with plain
//! nested loops — no compression, no tiling, no hardware model. It serves
//! as ground truth for the kernel implementations in `spikestream-kernels`:
//! both the baseline and the SpikeStream kernels must produce the same
//! input currents and output spikes (up to the rounding of the selected
//! storage format).

use crate::layer::{ConvSpec, Layer, LayerKind, LinearSpec, PoolSpec};
use crate::neuron::NeuronState;
use crate::tensor::{SpikeMap, Tensor3, TensorShape};

/// Functional reference implementation of spiking layers.
#[derive(Debug, Clone, Default)]
pub struct ReferenceEngine;

impl ReferenceEngine {
    /// Create a reference engine.
    pub fn new() -> Self {
        ReferenceEngine
    }

    /// Input currents of a convolutional layer fed with binary spikes.
    ///
    /// `input` must already be padded to `spec.padded_input()`. Since spike
    /// values are 1, each active input channel simply contributes its weight
    /// (the multiply-free accumulation the paper exploits).
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the padded layer input.
    pub fn conv_currents(&self, layer: &Layer, spec: &ConvSpec, input: &SpikeMap) -> Tensor3 {
        assert_eq!(input.shape(), spec.padded_input(), "input must be padded");
        let out_shape = spec.conv_output();
        let mut currents = Tensor3::zeros(out_shape);
        for oh in 0..out_shape.h {
            for ow in 0..out_shape.w {
                for kh in 0..spec.kh {
                    for kw in 0..spec.kw {
                        let ih = oh * spec.stride + kh;
                        let iw = ow * spec.stride + kw;
                        for ci in input.active_channels_iter(ih, iw) {
                            let ci = ci as usize;
                            for co in 0..spec.out_channels {
                                let w = layer.weights[spec.weight_index(kh, kw, ci, co)];
                                let v = currents.get(oh, ow, co) + w;
                                currents.set(oh, ow, co, v);
                            }
                        }
                    }
                }
            }
        }
        currents
    }

    /// Input currents of the dense spike-encoding first layer (the image
    /// values act as input currents; the convolution is a real matmul).
    pub fn conv_currents_dense(&self, layer: &Layer, spec: &ConvSpec, image: &Tensor3) -> Tensor3 {
        assert_eq!(image.shape(), spec.padded_input(), "image must be padded");
        let out_shape = spec.conv_output();
        let mut currents = Tensor3::zeros(out_shape);
        for oh in 0..out_shape.h {
            for ow in 0..out_shape.w {
                for kh in 0..spec.kh {
                    for kw in 0..spec.kw {
                        let ih = oh * spec.stride + kh;
                        let iw = ow * spec.stride + kw;
                        for ci in 0..spec.input.c {
                            let x = image.get(ih, iw, ci);
                            if x == 0.0 {
                                continue;
                            }
                            for co in 0..spec.out_channels {
                                let w = layer.weights[spec.weight_index(kh, kw, ci, co)];
                                let v = currents.get(oh, ow, co) + x * w;
                                currents.set(oh, ow, co, v);
                            }
                        }
                    }
                }
            }
        }
        currents
    }

    /// Input currents of a fully connected layer fed with binary spikes.
    /// The input map is read in flattened HWC order, so any shape with
    /// `in_features` total neurons is accepted; silent 64-neuron words are
    /// skipped in one comparison each.
    pub fn linear_currents(&self, layer: &Layer, spec: &LinearSpec, input: &SpikeMap) -> Vec<f32> {
        assert_eq!(input.shape().len(), spec.in_features, "input length mismatch");
        let mut currents = vec![0.0f32; spec.out_features];
        for i in input.iter_active() {
            for (o, current) in currents.iter_mut().enumerate() {
                *current += layer.weights[spec.weight_index(i, o)];
            }
        }
        currents
    }

    /// Apply the layer's neuron dynamics to per-neuron currents and return
    /// the output spike map (before pooling) for a convolutional layer.
    pub fn activate_conv(
        &self,
        layer: &Layer,
        spec: &ConvSpec,
        currents: &Tensor3,
        state: &mut NeuronState,
    ) -> SpikeMap {
        let out_shape = spec.conv_output();
        assert_eq!(state.len(), out_shape.len(), "neuron state size mismatch");
        let mut spikes = SpikeMap::silent(out_shape);
        state.step_into_map(&layer.neuron, currents.data(), &mut spikes);
        spikes
    }

    /// One full convolutional layer step: currents, activation, pooling.
    pub fn conv_forward(
        &self,
        layer: &Layer,
        input: &SpikeMap,
        state: &mut NeuronState,
    ) -> SpikeMap {
        let LayerKind::Conv(spec) = &layer.kind else {
            panic!("conv_forward called on a non-convolutional layer");
        };
        let currents = self.conv_currents(layer, spec, input);
        let spikes = self.activate_conv(layer, spec, &currents, state);
        if spec.pool {
            max_pool_2x2(&spikes)
        } else {
            spikes
        }
    }

    /// One full average-pooling layer step: each output neuron fires when
    /// the average activity of its window reaches one half.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is not an average-pooling layer or the input shape
    /// does not match the spec.
    pub fn avg_pool_forward(&self, layer: &Layer, input: &SpikeMap) -> SpikeMap {
        let LayerKind::AvgPool(spec) = &layer.kind else {
            panic!("avg_pool_forward called on a non-pooling layer");
        };
        assert_eq!(input.shape(), spec.input, "input shape mismatch");
        avg_pool(input, spec)
    }

    /// One full fully connected layer step. The output map has shape
    /// `(1, 1, out_features)`.
    pub fn linear_forward(
        &self,
        layer: &Layer,
        input: &SpikeMap,
        state: &mut NeuronState,
    ) -> SpikeMap {
        let LayerKind::Linear(spec) = &layer.kind else {
            panic!("linear_forward called on a non-linear layer");
        };
        let currents = self.linear_currents(layer, spec, input);
        let mut spikes = SpikeMap::silent(TensorShape::new(1, 1, spec.out_features));
        state.step_into_map(&layer.neuron, &currents, &mut spikes);
        spikes
    }
}

/// Average pooling of a binary spike map: an output neuron fires when at
/// least [`PoolSpec::fire_threshold`] of its window inputs spiked (window
/// average >= 0.5).
pub fn avg_pool(map: &SpikeMap, spec: &PoolSpec) -> SpikeMap {
    let out_shape = spec.output();
    let threshold = spec.fire_threshold();
    if spec.window == 2 {
        // 2x2 windows always fire on >= 2 of 4 inputs; compute the majority
        // word-parallel: extract the four channel fibers of the window and
        // combine 64 channels per instruction.
        debug_assert_eq!(threshold, 2);
        return pool_2x2_words(map, out_shape, |[a, b, c, d]| {
            (a & b) | (c & d) | ((a | b) & (c | d))
        });
    }
    let mut out = SpikeMap::silent(out_shape);
    for h in 0..out_shape.h {
        for w in 0..out_shape.w {
            for c in 0..out_shape.c {
                let mut count = 0usize;
                for dh in 0..spec.window {
                    for dw in 0..spec.window {
                        if map.get(spec.window * h + dh, spec.window * w + dw, c) {
                            count += 1;
                        }
                    }
                }
                out.set(h, w, c, count >= threshold);
            }
        }
    }
    out
}

/// 2x2 max-pool of a binary spike map (logical OR over each window).
pub fn max_pool_2x2(map: &SpikeMap) -> SpikeMap {
    let s = map.shape();
    let out_shape = TensorShape::new(s.h / 2, s.w / 2, s.c);
    pool_2x2_words(map, out_shape, |[a, b, c, d]| a | b | c | d)
}

/// Word-parallel 2x2 pooling: for each output position, the four input
/// fibers of the window (each `c` contiguous bits) are gathered into word
/// buffers and `combine` reduces them 64 channels at a time.
fn pool_2x2_words(
    map: &SpikeMap,
    out_shape: TensorShape,
    combine: impl Fn([u64; 4]) -> u64,
) -> SpikeMap {
    let s = map.shape();
    let mut out = SpikeMap::silent(out_shape);
    let c = s.c;
    let n_words = c.div_ceil(64);
    let mut fibers = vec![0u64; 4 * n_words];
    for h in 0..out_shape.h {
        for w in 0..out_shape.w {
            fibers.fill(0);
            for (i, (dh, dw)) in [(0, 0), (0, 1), (1, 0), (1, 1)].into_iter().enumerate() {
                let start = ((2 * h + dh) * s.w + (2 * w + dw)) * c;
                map.or_range_into(start, c, &mut fibers[i * n_words..(i + 1) * n_words]);
            }
            let out_start = (h * out_shape.w + w) * c;
            for wi in 0..n_words {
                let word = combine([
                    fibers[wi],
                    fibers[n_words + wi],
                    fibers[2 * n_words + wi],
                    fibers[3 * n_words + wi],
                ]);
                if word != 0 {
                    let bits = (c - wi * 64).min(64);
                    out.or_range_from(out_start + wi * 64, bits, &[word]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::neuron::LifParams;

    fn tiny_conv() -> (Layer, ConvSpec) {
        let spec = ConvSpec {
            input: TensorShape::new(4, 4, 2),
            out_channels: 3,
            kh: 3,
            kw: 3,
            stride: 1,
            padding: 1,
            pool: false,
        };
        let mut layer = Layer::new("c", LayerKind::Conv(spec), LifParams::new(0.5, 0.5));
        for (i, w) in layer.weights.iter_mut().enumerate() {
            *w = 0.01 * (i as f32 % 11.0) - 0.03;
        }
        (layer, spec)
    }

    #[test]
    fn silent_input_produces_zero_currents() {
        let (layer, spec) = tiny_conv();
        let input = SpikeMap::silent(spec.padded_input());
        let eng = ReferenceEngine::new();
        let currents = eng.conv_currents(&layer, &spec, &input);
        assert!(currents.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn single_spike_contributes_exactly_its_weights() {
        let (layer, spec) = tiny_conv();
        let mut input = SpikeMap::silent(spec.padded_input());
        // One spike at padded position (2, 2), channel 1.
        input.set(2, 2, 1, true);
        let eng = ReferenceEngine::new();
        let currents = eng.conv_currents(&layer, &spec, &input);
        // Output position (1, 1) sees this input at kernel offset (1, 1).
        let expected = layer.weights[spec.weight_index(1, 1, 1, 0)];
        assert!((currents.get(1, 1, 0) - expected).abs() < 1e-6);
        // Output position (2, 2) sees it at kernel offset (0, 0).
        let expected = layer.weights[spec.weight_index(0, 0, 1, 2)];
        assert!((currents.get(2, 2, 2) - expected).abs() < 1e-6);
    }

    #[test]
    fn dense_first_layer_scales_by_pixel_value() {
        let (layer, spec) = tiny_conv();
        let mut image = Tensor3::zeros(spec.padded_input());
        image.set(2, 2, 0, 0.5);
        let eng = ReferenceEngine::new();
        let currents = eng.conv_currents_dense(&layer, &spec, &image);
        let expected = 0.5 * layer.weights[spec.weight_index(1, 1, 0, 0)];
        assert!((currents.get(1, 1, 0) - expected).abs() < 1e-6);
    }

    #[test]
    fn linear_currents_sum_active_rows() {
        let spec = LinearSpec { in_features: 4, out_features: 2 };
        let mut layer = Layer::new("fc", LayerKind::Linear(spec), LifParams::default());
        layer.weights = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let eng = ReferenceEngine::new();
        let input = SpikeMap::from_vec(TensorShape::new(1, 1, 4), vec![true, false, true, false]);
        let currents = eng.linear_currents(&layer, &spec, &input);
        assert_eq!(currents, vec![1.0 + 5.0, 2.0 + 6.0]);
    }

    #[test]
    fn conv_forward_applies_threshold_and_pool() {
        let spec = ConvSpec {
            input: TensorShape::new(4, 4, 1),
            out_channels: 1,
            kh: 1,
            kw: 1,
            stride: 1,
            padding: 0,
            pool: true,
        };
        let mut layer = Layer::new("c", LayerKind::Conv(spec), LifParams::new(0.0, 0.5));
        layer.weights = vec![1.0];
        let mut input = SpikeMap::silent(spec.padded_input());
        input.set(0, 0, 0, true);
        input.set(3, 3, 0, true);
        let mut state = NeuronState::lif(spec.conv_output().len());
        let out = ReferenceEngine::new().conv_forward(&layer, &input, &mut state);
        assert_eq!(out.shape(), TensorShape::new(2, 2, 1));
        assert!(out.get(0, 0, 0));
        assert!(out.get(1, 1, 0));
        assert!(!out.get(0, 1, 0));
    }

    #[test]
    fn avg_pool_requires_half_the_window() {
        let spec = PoolSpec { input: TensorShape::new(4, 4, 1), window: 2 };
        let mut m = SpikeMap::silent(spec.input);
        // Window (0,0): one of four spikes -> silent.
        m.set(0, 0, 0, true);
        // Window (0,1): two of four spikes -> fires.
        m.set(0, 2, 0, true);
        m.set(1, 3, 0, true);
        let layer = Layer::new("pool", LayerKind::AvgPool(spec), LifParams::default());
        let out = ReferenceEngine::new().avg_pool_forward(&layer, &m);
        assert!(!out.get(0, 0, 0));
        assert!(out.get(0, 1, 0));
        assert_eq!(out.count_spikes(), 1);
    }

    #[test]
    fn max_pool_is_logical_or() {
        let mut m = SpikeMap::silent(TensorShape::new(4, 4, 1));
        m.set(1, 0, 0, true);
        let p = max_pool_2x2(&m);
        assert!(p.get(0, 0, 0));
        assert_eq!(p.count_spikes(), 1);
    }
}
