//! Compressed representations of sparse spike feature maps.
//!
//! SpikeStream stores the sparse binary ifmaps of convolutional layers in a
//! fiber-tree format derived from CSR (Section III-A of the paper): a
//! channel-index array `c_idcs` marks the active neurons at each spatial
//! position, and a spatial pointer array `s_ptr` holds the running count of
//! spikes across spatial positions. Because spiking activations are binary,
//! no value array is needed. Fully connected layers use a single index
//! array plus a count.
//!
//! The module also implements the address-event representation (AER) used
//! by neuromorphic processors — absolute coordinates plus a timestamp per
//! spike — as the memory-footprint baseline of Fig. 3a.

use serde::{Deserialize, Serialize};

use crate::tensor::{SpikeMap, TensorShape};

/// Width in bytes of indices and coordinates (the paper assumes 16-bit).
pub const INDEX_BYTES: usize = 2;

/// CSR-derived compressed ifmap of a convolutional layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedIfmap {
    shape: TensorShape,
    /// Channel indices of active neurons, concatenated position by position
    /// in row-major `(h, w)` order.
    c_idcs: Vec<u16>,
    /// Spatial pointers: `s_ptr[p]` is the number of spikes in positions
    /// `0..p`; length is `h * w + 1`.
    s_ptr: Vec<u32>,
}

impl CompressedIfmap {
    /// Compress a binary spike map.
    ///
    /// ```
    /// use spikestream_snn::tensor::{SpikeMap, TensorShape};
    /// use spikestream_snn::CompressedIfmap;
    ///
    /// let mut map = SpikeMap::silent(TensorShape::new(2, 2, 4));
    /// map.set(0, 1, 3, true);
    /// let csr = CompressedIfmap::from_spike_map(&map);
    /// assert_eq!(csr.spike_count(), 1);
    /// assert_eq!(csr.active_at(0, 1), &[3]);
    /// assert_eq!(csr.decompress(), map);
    /// ```
    pub fn from_spike_map(map: &SpikeMap) -> Self {
        let mut out = CompressedIfmap {
            shape: map.shape(),
            c_idcs: Vec::new(),
            s_ptr: Vec::with_capacity(map.shape().h * map.shape().w + 1),
        };
        out.refill_from(map);
        out
    }

    /// Recompress `map` into this buffer, reusing the index and pointer
    /// allocations — the batch driver's per-worker scratch path (no
    /// per-sample allocation once the vectors reached steady-state
    /// capacity).
    pub fn refill_from(&mut self, map: &SpikeMap) {
        let shape = map.shape();
        self.shape = shape;
        self.c_idcs.clear();
        self.s_ptr.clear();
        let positions = shape.h * shape.w;
        self.s_ptr.reserve(positions + 1);
        self.s_ptr.push(0);
        // One trailing-zeros scan over the packed words; the position
        // boundary (every `c` bits) is advanced amortized-O(1) per spike,
        // closing out each passed fiber with its running spike count.
        let c = shape.c;
        let mut next_boundary = c;
        for idx in map.iter_active() {
            while idx >= next_boundary {
                self.s_ptr.push(self.c_idcs.len() as u32);
                next_boundary += c;
            }
            self.c_idcs.push((idx - (next_boundary - c)) as u16);
        }
        let total = self.c_idcs.len() as u32;
        self.s_ptr.resize(positions + 1, total);
    }

    /// Reconstruct the dense binary spike map.
    pub fn decompress(&self) -> SpikeMap {
        let mut map = SpikeMap::silent(self.shape);
        for h in 0..self.shape.h {
            for w in 0..self.shape.w {
                for &c in self.active_at(h, w) {
                    map.set(h, w, c as usize, true);
                }
            }
        }
        map
    }

    /// Shape of the represented ifmap.
    pub fn shape(&self) -> TensorShape {
        self.shape
    }

    /// Channel-index array (`c_idcs`).
    pub fn c_idcs(&self) -> &[u16] {
        &self.c_idcs
    }

    /// Spatial pointer array (`s_ptr`).
    pub fn s_ptr(&self) -> &[u32] {
        &self.s_ptr
    }

    /// Active channel indices at spatial position `(h, w)`.
    pub fn active_at(&self, h: usize, w: usize) -> &[u16] {
        let p = h * self.shape.w + w;
        let start = self.s_ptr[p] as usize;
        let end = self.s_ptr[p + 1] as usize;
        &self.c_idcs[start..end]
    }

    /// Number of spikes at spatial position `(h, w)` — the SpVA stream
    /// length of that position.
    pub fn count_at(&self, h: usize, w: usize) -> usize {
        self.active_at(h, w).len()
    }

    /// Total number of spikes.
    pub fn spike_count(&self) -> usize {
        self.c_idcs.len()
    }

    /// Firing rate of the represented map.
    pub fn firing_rate(&self) -> f64 {
        if self.shape.is_empty() {
            0.0
        } else {
            self.spike_count() as f64 / self.shape.len() as f64
        }
    }

    /// Memory footprint in bytes with 16-bit indices and spatial pointers,
    /// as assumed in Fig. 3a of the paper.
    pub fn footprint_bytes(&self) -> usize {
        self.c_idcs.len() * INDEX_BYTES + self.s_ptr.len() * INDEX_BYTES
    }
}

impl Default for CompressedIfmap {
    /// An empty `0x0x0` ifmap — the scratch seed for [`refill_from`]
    /// (matches `from_spike_map` on an empty map).
    ///
    /// [`refill_from`]: CompressedIfmap::refill_from
    fn default() -> Self {
        CompressedIfmap { shape: TensorShape::new(0, 0, 0), c_idcs: Vec::new(), s_ptr: vec![0] }
    }
}

/// Compressed input of a fully connected layer: a single index array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedFcInput {
    in_features: usize,
    idcs: Vec<u16>,
}

impl CompressedFcInput {
    /// Compress a flat binary input vector.
    ///
    /// ```
    /// use spikestream_snn::CompressedFcInput;
    ///
    /// let c = CompressedFcInput::from_spikes(&[false, true, true, false]);
    /// assert_eq!(c.idcs(), &[1, 2]);
    /// assert_eq!(c.decompress(), vec![false, true, true, false]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `spikes.len()` exceeds `u16::MAX + 1` addressable inputs.
    pub fn from_spikes(spikes: &[bool]) -> Self {
        let mut out = CompressedFcInput { in_features: 0, idcs: Vec::new() };
        out.refill_from(spikes);
        out
    }

    /// Recompress `spikes` into this buffer, reusing the index allocation
    /// (see [`CompressedIfmap::refill_from`]).
    ///
    /// # Panics
    ///
    /// Panics if `spikes.len()` exceeds `u16::MAX + 1` addressable inputs.
    pub fn refill_from(&mut self, spikes: &[bool]) {
        assert!(spikes.len() <= u16::MAX as usize + 1, "FC input too large for 16-bit indices");
        self.in_features = spikes.len();
        self.idcs.clear();
        self.idcs.extend(spikes.iter().enumerate().filter_map(|(i, &s)| s.then_some(i as u16)));
    }

    /// Compress a packed spike map flattened to FC input order (HWC linear).
    ///
    /// # Panics
    ///
    /// Panics if the map holds more than `u16::MAX + 1` neurons.
    pub fn from_spike_map(map: &SpikeMap) -> Self {
        let mut out = CompressedFcInput { in_features: 0, idcs: Vec::new() };
        out.refill_from_map(map);
        out
    }

    /// Recompress a packed spike map into this buffer, reusing the index
    /// allocation — the word-parallel twin of [`refill_from`], driven by a
    /// trailing-zeros scan instead of a per-element walk.
    ///
    /// # Panics
    ///
    /// Panics if the map holds more than `u16::MAX + 1` neurons.
    ///
    /// [`refill_from`]: CompressedFcInput::refill_from
    pub fn refill_from_map(&mut self, map: &SpikeMap) {
        let n = map.shape().len();
        assert!(n <= u16::MAX as usize + 1, "FC input too large for 16-bit indices");
        self.in_features = n;
        self.idcs.clear();
        self.idcs.extend(map.iter_active().map(|i| i as u16));
    }

    /// Reconstruct the dense boolean vector.
    pub fn decompress(&self) -> Vec<bool> {
        let mut out = vec![false; self.in_features];
        for &i in &self.idcs {
            out[i as usize] = true;
        }
        out
    }

    /// Indices of active inputs.
    pub fn idcs(&self) -> &[u16] {
        &self.idcs
    }

    /// Number of input neurons represented.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of spikes.
    pub fn spike_count(&self) -> usize {
        self.idcs.len()
    }

    /// Memory footprint in bytes (index array plus the spike count word).
    pub fn footprint_bytes(&self) -> usize {
        self.idcs.len() * INDEX_BYTES + 4
    }
}

impl Default for CompressedFcInput {
    /// An empty zero-feature input — the scratch seed for [`refill_from`]
    /// (matches `from_spikes` on an empty slice).
    ///
    /// [`refill_from`]: CompressedFcInput::refill_from
    fn default() -> Self {
        CompressedFcInput { in_features: 0, idcs: Vec::new() }
    }
}

/// One address-event: absolute coordinates plus a timestamp.
///
/// All four fields are 16 bits wide, matching the fixed event words of the
/// neuromorphic interfaces the paper compares against. The format can
/// therefore only address feature maps with `h`, `w` and `c` each at most
/// `u16::MAX + 1` (65 536) positions, and timesteps up to `u16::MAX`;
/// [`AerFrame::from_spike_map`] debug-asserts those limits instead of
/// silently truncating coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AerEvent {
    /// Spatial row of the spiking neuron (limited to `u16`; see the type
    /// docs).
    pub y: u16,
    /// Spatial column of the spiking neuron (limited to `u16`).
    pub x: u16,
    /// Channel of the spiking neuron (limited to `u16`).
    pub channel: u16,
    /// Timestep at which the spike occurred (limited to `u16`).
    pub timestamp: u16,
}

impl AerEvent {
    /// Storage size of one event in bytes (four 16-bit fields).
    pub const BYTES: usize = 8;
}

/// An AER-encoded spike frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AerFrame {
    shape: TensorShape,
    events: Vec<AerEvent>,
}

impl AerFrame {
    /// Encode a spike map at the given timestep.
    ///
    /// # Panics
    ///
    /// Debug-asserts that every coordinate of `map` fits the 16-bit event
    /// fields (`h`, `w`, `c` at most `u16::MAX + 1`); larger maps would
    /// silently wrap their coordinates in release builds, so they are
    /// rejected while debug assertions are on.
    pub fn from_spike_map(map: &SpikeMap, timestamp: u16) -> Self {
        let shape = map.shape();
        debug_assert!(
            shape.h <= u16::MAX as usize + 1
                && shape.w <= u16::MAX as usize + 1
                && shape.c <= u16::MAX as usize + 1,
            "spike map {}x{}x{} exceeds the 16-bit AER coordinate range",
            shape.h,
            shape.w,
            shape.c
        );
        let mut events = Vec::new();
        let row = shape.w * shape.c;
        for idx in map.iter_active() {
            let rem = idx % row;
            events.push(AerEvent {
                y: (idx / row) as u16,
                x: (rem / shape.c) as u16,
                channel: (rem % shape.c) as u16,
                timestamp,
            });
        }
        AerFrame { shape, events }
    }

    /// Encode one frame per timestep of a temporal run: frame `t` carries
    /// the spikes of `maps[t]` stamped with `timestamp = t`. This is the
    /// path that gives [`AerEvent::timestamp`] real semantics — a temporal
    /// inference is a monotone stream of frames, one per step.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX + 1` timesteps are encoded; per-frame
    /// coordinate limits are debug-asserted as in
    /// [`AerFrame::from_spike_map`].
    pub fn sequence<'a>(maps: impl IntoIterator<Item = &'a SpikeMap>) -> Vec<AerFrame> {
        maps.into_iter()
            .enumerate()
            .map(|(t, map)| {
                assert!(t <= u16::MAX as usize, "timestep {t} exceeds the 16-bit AER timestamp");
                AerFrame::from_spike_map(map, t as u16)
            })
            .collect()
    }

    /// The events of the frame.
    pub fn events(&self) -> &[AerEvent] {
        &self.events
    }

    /// The common timestamp of the frame's events (`None` for an empty
    /// frame).
    pub fn timestamp(&self) -> Option<u16> {
        self.events.first().map(|e| e.timestamp)
    }

    /// Reconstruct the dense spike map.
    pub fn decompress(&self) -> SpikeMap {
        let mut map = SpikeMap::silent(self.shape);
        for e in &self.events {
            map.set(e.y as usize, e.x as usize, e.channel as usize, true);
        }
        map
    }

    /// Memory footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.events.len() * AerEvent::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_map() -> SpikeMap {
        let shape = TensorShape::new(3, 3, 8);
        let mut m = SpikeMap::silent(shape);
        m.set(0, 0, 1, true);
        m.set(0, 0, 5, true);
        m.set(1, 2, 0, true);
        m.set(2, 2, 7, true);
        m
    }

    #[test]
    fn csr_round_trip() {
        let map = sample_map();
        let c = CompressedIfmap::from_spike_map(&map);
        assert_eq!(c.spike_count(), 4);
        assert_eq!(c.decompress(), map);
    }

    #[test]
    fn csr_per_position_queries() {
        let c = CompressedIfmap::from_spike_map(&sample_map());
        assert_eq!(c.active_at(0, 0), &[1, 5]);
        assert_eq!(c.count_at(0, 0), 2);
        assert_eq!(c.count_at(0, 1), 0);
        assert_eq!(c.active_at(1, 2), &[0]);
        assert_eq!(c.s_ptr().len(), 3 * 3 + 1);
        assert_eq!(*c.s_ptr().last().unwrap(), 4);
    }

    #[test]
    fn csr_footprint_accounts_indices_and_pointers() {
        let c = CompressedIfmap::from_spike_map(&sample_map());
        assert_eq!(c.footprint_bytes(), 4 * 2 + 10 * 2);
    }

    #[test]
    fn aer_round_trip_and_footprint() {
        let map = sample_map();
        let aer = AerFrame::from_spike_map(&map, 3);
        assert_eq!(aer.events().len(), 4);
        assert!(aer.events().iter().all(|e| e.timestamp == 3));
        assert_eq!(aer.decompress(), map);
        assert_eq!(aer.footprint_bytes(), 4 * AerEvent::BYTES);
    }

    #[test]
    fn csr_is_smaller_than_aer_at_meaningful_sparsity() {
        // A 34x34x64 ifmap firing at ~30% (like the early S-VGG11 layers).
        let shape = TensorShape::new(34, 34, 64);
        let mut map = SpikeMap::silent(shape);
        for h in 0..34 {
            for w in 0..34 {
                for c in 0..64 {
                    if (h * 31 + w * 17 + c * 7) % 10 < 3 {
                        map.set(h, w, c, true);
                    }
                }
            }
        }
        let csr = CompressedIfmap::from_spike_map(&map).footprint_bytes();
        let aer = AerFrame::from_spike_map(&map, 0).footprint_bytes();
        let ratio = aer as f64 / csr as f64;
        assert!(ratio > 2.0, "CSR should be well under half of AER, got ratio {ratio}");
    }

    #[test]
    fn fc_compression_round_trip() {
        let spikes = vec![false, true, false, false, true, true];
        let c = CompressedFcInput::from_spikes(&spikes);
        assert_eq!(c.idcs(), &[1, 4, 5]);
        assert_eq!(c.spike_count(), 3);
        assert_eq!(c.decompress(), spikes);
        assert_eq!(c.footprint_bytes(), 3 * 2 + 4);
    }

    #[test]
    fn refill_reuses_buffers_and_matches_fresh_compression() {
        let map = sample_map();
        let mut reused = CompressedIfmap::from_spike_map(&map);
        let big_shape = TensorShape::new(5, 5, 8);
        let mut big = SpikeMap::silent(big_shape);
        big.set(4, 4, 7, true);
        reused.refill_from(&big);
        assert_eq!(reused, CompressedIfmap::from_spike_map(&big));
        reused.refill_from(&map);
        assert_eq!(reused, CompressedIfmap::from_spike_map(&map));

        let mut fc = CompressedFcInput::from_spikes(&[true; 8]);
        fc.refill_from(&[false, true, false]);
        assert_eq!(fc, CompressedFcInput::from_spikes(&[false, true, false]));
        assert_eq!(fc.in_features(), 3);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "debug assertion only")]
    #[should_panic(expected = "16-bit AER coordinate range")]
    fn aer_rejects_maps_beyond_the_u16_coordinate_range() {
        // 65 537 rows: row 65 536 would wrap to y = 0 in the event word.
        let map = SpikeMap::silent(TensorShape::new(u16::MAX as usize + 2, 1, 1));
        let _ = AerFrame::from_spike_map(&map, 0);
    }

    #[test]
    fn aer_accepts_the_largest_addressable_map() {
        let mut map = SpikeMap::silent(TensorShape::new(u16::MAX as usize + 1, 1, 1));
        map.set(u16::MAX as usize, 0, 0, true);
        let frame = AerFrame::from_spike_map(&map, u16::MAX);
        assert_eq!(frame.events().len(), 1);
        assert_eq!(frame.events()[0].y, u16::MAX);
        assert_eq!(frame.decompress(), map);
    }

    #[test]
    fn aer_sequence_stamps_one_frame_per_timestep() {
        let maps = vec![sample_map(), SpikeMap::silent(TensorShape::new(3, 3, 8)), sample_map()];
        let frames = AerFrame::sequence(&maps);
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].timestamp(), Some(0));
        assert_eq!(frames[1].timestamp(), None, "silent steps produce empty frames");
        assert_eq!(frames[2].timestamp(), Some(2));
        for (t, (frame, map)) in frames.iter().zip(&maps).enumerate() {
            assert_eq!(&frame.decompress(), map);
            assert!(frame.events().iter().all(|e| e.timestamp == t as u16));
        }
    }

    #[test]
    fn empty_map_compresses_to_pointers_only() {
        let map = SpikeMap::silent(TensorShape::new(4, 4, 16));
        let c = CompressedIfmap::from_spike_map(&map);
        assert_eq!(c.spike_count(), 0);
        assert_eq!(c.footprint_bytes(), 17 * 2);
        assert_eq!(c.firing_rate(), 0.0);
    }
}
