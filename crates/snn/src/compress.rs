//! Compressed representations of sparse spike feature maps.
//!
//! SpikeStream stores the sparse binary ifmaps of convolutional layers in a
//! fiber-tree format derived from CSR (Section III-A of the paper): a
//! channel-index array `c_idcs` marks the active neurons at each spatial
//! position, and a spatial pointer array `s_ptr` holds the running count of
//! spikes across spatial positions. Because spiking activations are binary,
//! no value array is needed. Fully connected layers use a single index
//! array plus a count.
//!
//! The module also implements the address-event representation (AER) used
//! by neuromorphic processors — absolute coordinates plus a timestamp per
//! spike — as the memory-footprint baseline of Fig. 3a.

use serde::{Deserialize, Serialize};

use crate::tensor::{SpikeMap, TensorShape};

/// Width in bytes of indices and coordinates (the paper assumes 16-bit).
pub const INDEX_BYTES: usize = 2;

/// CSR-derived compressed ifmap of a convolutional layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedIfmap {
    shape: TensorShape,
    /// Channel indices of active neurons, concatenated position by position
    /// in row-major `(h, w)` order.
    c_idcs: Vec<u16>,
    /// Spatial pointers: `s_ptr[p]` is the number of spikes in positions
    /// `0..p`; length is `h * w + 1`.
    s_ptr: Vec<u32>,
}

impl CompressedIfmap {
    /// Compress a binary spike map.
    pub fn from_spike_map(map: &SpikeMap) -> Self {
        let shape = map.shape();
        let mut c_idcs = Vec::new();
        let mut s_ptr = Vec::with_capacity(shape.h * shape.w + 1);
        s_ptr.push(0);
        for h in 0..shape.h {
            for w in 0..shape.w {
                for c in map.active_channels(h, w) {
                    c_idcs.push(c as u16);
                }
                s_ptr.push(c_idcs.len() as u32);
            }
        }
        CompressedIfmap { shape, c_idcs, s_ptr }
    }

    /// Reconstruct the dense binary spike map.
    pub fn decompress(&self) -> SpikeMap {
        let mut map = SpikeMap::silent(self.shape);
        for h in 0..self.shape.h {
            for w in 0..self.shape.w {
                for &c in self.active_at(h, w) {
                    map.set(h, w, c as usize, true);
                }
            }
        }
        map
    }

    /// Shape of the represented ifmap.
    pub fn shape(&self) -> TensorShape {
        self.shape
    }

    /// Channel-index array (`c_idcs`).
    pub fn c_idcs(&self) -> &[u16] {
        &self.c_idcs
    }

    /// Spatial pointer array (`s_ptr`).
    pub fn s_ptr(&self) -> &[u32] {
        &self.s_ptr
    }

    /// Active channel indices at spatial position `(h, w)`.
    pub fn active_at(&self, h: usize, w: usize) -> &[u16] {
        let p = h * self.shape.w + w;
        let start = self.s_ptr[p] as usize;
        let end = self.s_ptr[p + 1] as usize;
        &self.c_idcs[start..end]
    }

    /// Number of spikes at spatial position `(h, w)` — the SpVA stream
    /// length of that position.
    pub fn count_at(&self, h: usize, w: usize) -> usize {
        self.active_at(h, w).len()
    }

    /// Total number of spikes.
    pub fn spike_count(&self) -> usize {
        self.c_idcs.len()
    }

    /// Firing rate of the represented map.
    pub fn firing_rate(&self) -> f64 {
        if self.shape.is_empty() {
            0.0
        } else {
            self.spike_count() as f64 / self.shape.len() as f64
        }
    }

    /// Memory footprint in bytes with 16-bit indices and spatial pointers,
    /// as assumed in Fig. 3a of the paper.
    pub fn footprint_bytes(&self) -> usize {
        self.c_idcs.len() * INDEX_BYTES + self.s_ptr.len() * INDEX_BYTES
    }
}

/// Compressed input of a fully connected layer: a single index array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedFcInput {
    in_features: usize,
    idcs: Vec<u16>,
}

impl CompressedFcInput {
    /// Compress a flat binary input vector.
    ///
    /// # Panics
    ///
    /// Panics if `spikes.len()` exceeds `u16::MAX + 1` addressable inputs.
    pub fn from_spikes(spikes: &[bool]) -> Self {
        assert!(spikes.len() <= u16::MAX as usize + 1, "FC input too large for 16-bit indices");
        let idcs = spikes.iter().enumerate().filter_map(|(i, &s)| s.then_some(i as u16)).collect();
        CompressedFcInput { in_features: spikes.len(), idcs }
    }

    /// Reconstruct the dense boolean vector.
    pub fn decompress(&self) -> Vec<bool> {
        let mut out = vec![false; self.in_features];
        for &i in &self.idcs {
            out[i as usize] = true;
        }
        out
    }

    /// Indices of active inputs.
    pub fn idcs(&self) -> &[u16] {
        &self.idcs
    }

    /// Number of input neurons represented.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of spikes.
    pub fn spike_count(&self) -> usize {
        self.idcs.len()
    }

    /// Memory footprint in bytes (index array plus the spike count word).
    pub fn footprint_bytes(&self) -> usize {
        self.idcs.len() * INDEX_BYTES + 4
    }
}

/// One address-event: absolute coordinates plus a timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AerEvent {
    /// Spatial row of the spiking neuron.
    pub y: u16,
    /// Spatial column of the spiking neuron.
    pub x: u16,
    /// Channel of the spiking neuron.
    pub channel: u16,
    /// Timestep at which the spike occurred.
    pub timestamp: u16,
}

impl AerEvent {
    /// Storage size of one event in bytes (four 16-bit fields).
    pub const BYTES: usize = 8;
}

/// An AER-encoded spike frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AerFrame {
    shape: TensorShape,
    events: Vec<AerEvent>,
}

impl AerFrame {
    /// Encode a spike map at the given timestep.
    pub fn from_spike_map(map: &SpikeMap, timestamp: u16) -> Self {
        let shape = map.shape();
        let mut events = Vec::new();
        for h in 0..shape.h {
            for w in 0..shape.w {
                for c in map.active_channels(h, w) {
                    events.push(AerEvent {
                        y: h as u16,
                        x: w as u16,
                        channel: c as u16,
                        timestamp,
                    });
                }
            }
        }
        AerFrame { shape, events }
    }

    /// The events of the frame.
    pub fn events(&self) -> &[AerEvent] {
        &self.events
    }

    /// Reconstruct the dense spike map.
    pub fn decompress(&self) -> SpikeMap {
        let mut map = SpikeMap::silent(self.shape);
        for e in &self.events {
            map.set(e.y as usize, e.x as usize, e.channel as usize, true);
        }
        map
    }

    /// Memory footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.events.len() * AerEvent::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_map() -> SpikeMap {
        let shape = TensorShape::new(3, 3, 8);
        let mut m = SpikeMap::silent(shape);
        m.set(0, 0, 1, true);
        m.set(0, 0, 5, true);
        m.set(1, 2, 0, true);
        m.set(2, 2, 7, true);
        m
    }

    #[test]
    fn csr_round_trip() {
        let map = sample_map();
        let c = CompressedIfmap::from_spike_map(&map);
        assert_eq!(c.spike_count(), 4);
        assert_eq!(c.decompress(), map);
    }

    #[test]
    fn csr_per_position_queries() {
        let c = CompressedIfmap::from_spike_map(&sample_map());
        assert_eq!(c.active_at(0, 0), &[1, 5]);
        assert_eq!(c.count_at(0, 0), 2);
        assert_eq!(c.count_at(0, 1), 0);
        assert_eq!(c.active_at(1, 2), &[0]);
        assert_eq!(c.s_ptr().len(), 3 * 3 + 1);
        assert_eq!(*c.s_ptr().last().unwrap(), 4);
    }

    #[test]
    fn csr_footprint_accounts_indices_and_pointers() {
        let c = CompressedIfmap::from_spike_map(&sample_map());
        assert_eq!(c.footprint_bytes(), 4 * 2 + 10 * 2);
    }

    #[test]
    fn aer_round_trip_and_footprint() {
        let map = sample_map();
        let aer = AerFrame::from_spike_map(&map, 3);
        assert_eq!(aer.events().len(), 4);
        assert!(aer.events().iter().all(|e| e.timestamp == 3));
        assert_eq!(aer.decompress(), map);
        assert_eq!(aer.footprint_bytes(), 4 * AerEvent::BYTES);
    }

    #[test]
    fn csr_is_smaller_than_aer_at_meaningful_sparsity() {
        // A 34x34x64 ifmap firing at ~30% (like the early S-VGG11 layers).
        let shape = TensorShape::new(34, 34, 64);
        let mut map = SpikeMap::silent(shape);
        for h in 0..34 {
            for w in 0..34 {
                for c in 0..64 {
                    if (h * 31 + w * 17 + c * 7) % 10 < 3 {
                        map.set(h, w, c, true);
                    }
                }
            }
        }
        let csr = CompressedIfmap::from_spike_map(&map).footprint_bytes();
        let aer = AerFrame::from_spike_map(&map, 0).footprint_bytes();
        let ratio = aer as f64 / csr as f64;
        assert!(ratio > 2.0, "CSR should be well under half of AER, got ratio {ratio}");
    }

    #[test]
    fn fc_compression_round_trip() {
        let spikes = vec![false, true, false, false, true, true];
        let c = CompressedFcInput::from_spikes(&spikes);
        assert_eq!(c.idcs(), &[1, 4, 5]);
        assert_eq!(c.spike_count(), 3);
        assert_eq!(c.decompress(), spikes);
        assert_eq!(c.footprint_bytes(), 3 * 2 + 4);
    }

    #[test]
    fn empty_map_compresses_to_pointers_only() {
        let map = SpikeMap::silent(TensorShape::new(4, 4, 16));
        let c = CompressedIfmap::from_spike_map(&map);
        assert_eq!(c.spike_count(), 0);
        assert_eq!(c.footprint_bytes(), 17 * 2);
        assert_eq!(c.firing_rate(), 0.0);
    }
}
