//! Layer descriptors: spiking convolutional and fully connected layers.
//!
//! Weights are stored in the batched HWC layout used by the kernels: for a
//! convolution, the innermost dimension is the output channel, so the
//! weights of all filters at one `(kh, kw, ci)` coordinate are contiguous
//! and can be read as one SIMD group (Section III-C of the paper).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::neuron::NeuronModel;
use crate::tensor::TensorShape;

/// Geometry of a spiking convolutional layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Unpadded input feature-map shape.
    pub input: TensorShape,
    /// Number of output channels (filters).
    pub out_channels: usize,
    /// Filter height.
    pub kh: usize,
    /// Filter width.
    pub kw: usize,
    /// Convolution stride.
    pub stride: usize,
    /// Symmetric zero padding.
    pub padding: usize,
    /// Whether a 2x2 spike max-pool follows the layer.
    pub pool: bool,
}

impl ConvSpec {
    /// Padded input shape (what the kernels and Fig. 3a of the paper report).
    pub fn padded_input(&self) -> TensorShape {
        TensorShape::new(
            self.input.h + 2 * self.padding,
            self.input.w + 2 * self.padding,
            self.input.c,
        )
    }

    /// Output shape of the convolution itself (before pooling).
    pub fn conv_output(&self) -> TensorShape {
        let h = (self.input.h + 2 * self.padding - self.kh) / self.stride + 1;
        let w = (self.input.w + 2 * self.padding - self.kw) / self.stride + 1;
        TensorShape::new(h, w, self.out_channels)
    }

    /// Output shape after the optional pooling stage.
    pub fn output(&self) -> TensorShape {
        let o = self.conv_output();
        if self.pool {
            TensorShape::new(o.h / 2, o.w / 2, o.c)
        } else {
            o
        }
    }

    /// Number of weights in the layer.
    pub fn weight_count(&self) -> usize {
        self.kh * self.kw * self.input.c * self.out_channels
    }

    /// Dense synaptic operations of one timestep (every input counted).
    pub fn dense_synops(&self) -> u64 {
        let o = self.conv_output();
        (o.h * o.w * o.c * self.kh * self.kw * self.input.c) as u64
    }

    /// Linear index of weight `(kh, kw, ci, co)` in the batched HWC layout.
    pub fn weight_index(&self, kh: usize, kw: usize, ci: usize, co: usize) -> usize {
        ((kh * self.kw + kw) * self.input.c + ci) * self.out_channels + co
    }
}

/// Geometry of a spike average-pooling layer.
///
/// Average pooling over binary spikes reduces each `window x window`
/// neighbourhood to one output neuron per channel that fires when the
/// window's average activity reaches one half (i.e. at least
/// `ceil(window^2 / 2)` of its inputs spiked). Unlike the 2x2 max-pool
/// fused into the conv kernels, this is a standalone layer with its own
/// stream-program emitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Input feature-map shape (no padding).
    pub input: TensorShape,
    /// Pooling window edge length (stride equals the window).
    pub window: usize,
}

impl PoolSpec {
    /// Output shape of the pooling layer.
    pub fn output(&self) -> TensorShape {
        TensorShape::new(self.input.h / self.window, self.input.w / self.window, self.input.c)
    }

    /// Dense synaptic operations of one timestep (one accumulation per
    /// window input).
    pub fn dense_synops(&self) -> u64 {
        (self.output().len() * self.window * self.window) as u64
    }

    /// Minimum number of active window inputs for the output to fire
    /// (average activity >= 0.5).
    pub fn fire_threshold(&self) -> usize {
        self.window * self.window / 2 + self.window * self.window % 2
    }
}

/// Geometry of a spiking fully connected layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearSpec {
    /// Number of input neurons.
    pub in_features: usize,
    /// Number of output neurons.
    pub out_features: usize,
}

impl LinearSpec {
    /// Number of weights in the layer.
    pub fn weight_count(&self) -> usize {
        self.in_features * self.out_features
    }

    /// Dense synaptic operations of one timestep.
    pub fn dense_synops(&self) -> u64 {
        self.weight_count() as u64
    }

    /// Linear index of weight `(i, o)` with output-channel-fastest layout.
    pub fn weight_index(&self, i: usize, o: usize) -> usize {
        i * self.out_features + o
    }
}

/// The kind of a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerKind {
    /// Spiking 2D convolution.
    Conv(ConvSpec),
    /// Spike average pooling.
    AvgPool(PoolSpec),
    /// Spiking fully connected layer.
    Linear(LinearSpec),
}

impl LayerKind {
    /// Number of weights of the layer.
    pub fn weight_count(&self) -> usize {
        match self {
            LayerKind::Conv(c) => c.weight_count(),
            LayerKind::AvgPool(_) => 0,
            LayerKind::Linear(l) => l.weight_count(),
        }
    }

    /// Dense synaptic operation count of one timestep.
    pub fn dense_synops(&self) -> u64 {
        match self {
            LayerKind::Conv(c) => c.dense_synops(),
            LayerKind::AvgPool(p) => p.dense_synops(),
            LayerKind::Linear(l) => l.dense_synops(),
        }
    }

    /// Number of output neurons.
    pub fn output_neurons(&self) -> usize {
        match self {
            LayerKind::Conv(c) => c.conv_output().len(),
            LayerKind::AvgPool(p) => p.output().len(),
            LayerKind::Linear(l) => l.out_features,
        }
    }
}

/// A network layer: geometry, weights and neuron parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable name (e.g. `conv3`).
    pub name: String,
    /// Geometry of the layer.
    pub kind: LayerKind,
    /// Weights in the batched HWC layout (see [`ConvSpec::weight_index`]).
    pub weights: Vec<f32>,
    /// Neuron model (and its parameters) of the layer's neurons.
    pub neuron: NeuronModel,
    /// Whether this layer performs spike encoding from a dense input
    /// (only ever true for the first layer, Section III-F of the paper).
    pub encodes_input: bool,
}

impl Layer {
    /// Create a layer with zero-initialized weights. The neuron model is
    /// anything convertible into a [`NeuronModel`] — passing bare
    /// [`LifParams`](crate::neuron::LifParams) keeps working.
    pub fn new(name: impl Into<String>, kind: LayerKind, neuron: impl Into<NeuronModel>) -> Self {
        Layer {
            name: name.into(),
            kind,
            weights: vec![0.0; kind.weight_count()],
            neuron: neuron.into(),
            encodes_input: false,
        }
    }

    /// Randomize the weights with a uniform distribution in `[-scale, scale]`.
    pub fn randomize_weights<R: Rng>(&mut self, rng: &mut R, scale: f32) {
        for w in &mut self.weights {
            *w = rng.gen_range(-scale..=scale);
        }
    }

    /// Memory footprint of the weights in bytes for the given element size.
    pub fn weight_bytes(&self, elem_bytes: usize) -> usize {
        self.weights.len() * elem_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ConvSpec {
        ConvSpec {
            input: TensorShape::new(32, 32, 3),
            out_channels: 64,
            kh: 3,
            kw: 3,
            stride: 1,
            padding: 1,
            pool: false,
        }
    }

    #[test]
    fn conv_shapes_match_vgg_first_layer() {
        let s = spec();
        assert_eq!(s.padded_input(), TensorShape::new(34, 34, 3));
        assert_eq!(s.conv_output(), TensorShape::new(32, 32, 64));
        assert_eq!(s.weight_count(), 3 * 3 * 3 * 64);
        assert_eq!(s.dense_synops(), 32 * 32 * 64 * 27);
    }

    #[test]
    fn pooling_halves_spatial_dims() {
        let mut s = spec();
        s.pool = true;
        assert_eq!(s.output(), TensorShape::new(16, 16, 64));
    }

    #[test]
    fn conv_weight_layout_is_output_channel_fastest() {
        let s = spec();
        assert_eq!(s.weight_index(0, 0, 0, 0), 0);
        assert_eq!(s.weight_index(0, 0, 0, 1), 1);
        assert_eq!(s.weight_index(0, 0, 1, 0), 64);
        assert_eq!(s.weight_index(0, 1, 0, 0), 3 * 64);
    }

    #[test]
    fn avg_pool_shapes_and_threshold() {
        let p = PoolSpec { input: TensorShape::new(8, 8, 16), window: 2 };
        assert_eq!(p.output(), TensorShape::new(4, 4, 16));
        assert_eq!(p.dense_synops(), (4 * 4 * 16 * 4) as u64);
        assert_eq!(p.fire_threshold(), 2, "2 of 4 inputs reach a 0.5 average");
        let p3 = PoolSpec { input: TensorShape::new(9, 9, 4), window: 3 };
        assert_eq!(p3.fire_threshold(), 5, "5 of 9 inputs reach a 0.5 average");
        assert_eq!(LayerKind::AvgPool(p).weight_count(), 0);
        assert_eq!(LayerKind::AvgPool(p).output_neurons(), 4 * 4 * 16);
    }

    #[test]
    fn linear_layout_and_counts() {
        let l = LinearSpec { in_features: 100, out_features: 10 };
        assert_eq!(l.weight_count(), 1000);
        assert_eq!(l.weight_index(1, 0), 10);
        assert_eq!(l.dense_synops(), 1000);
    }

    #[test]
    fn layer_construction_and_random_weights() {
        use crate::neuron::LifParams;
        let mut layer = Layer::new("conv1", LayerKind::Conv(spec()), LifParams::default());
        assert_eq!(layer.neuron, NeuronModel::Lif(LifParams::default()));
        assert!(layer.weights.iter().all(|&w| w == 0.0));
        let mut rng = rand::rngs::mock::StepRng::new(1, 7);
        layer.randomize_weights(&mut rng, 0.5);
        assert!(layer.weights.iter().any(|&w| w != 0.0));
        assert_eq!(layer.weight_bytes(2), layer.weights.len() * 2);
    }
}
