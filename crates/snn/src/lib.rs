//! Spiking-neural-network substrate for the SpikeStream reproduction.
//!
//! This crate provides everything above the hardware model and below the
//! kernels:
//!
//! * dense activation / weight tensors in the HWC layout used by the
//!   kernels ([`tensor`]),
//! * the neuron models — leaky integrate-and-fire and Izhikevich — behind
//!   the model-generic [`NeuronState`] ([`neuron`]),
//! * layer descriptors and the S-VGG11 network evaluated in the paper
//!   ([`layer`], [`model`]),
//! * the CSR-derived compressed ifmap format and the AER format it is
//!   compared against ([`compress`]),
//! * spike encodings for image inputs, including the per-timestep
//!   rate/direct temporal encoder ([`encoding`]),
//! * a synthetic workload generator that reproduces the per-layer firing
//!   statistics of the paper's CIFAR-10 evaluation, plus the
//!   [`WorkloadMode`] switch between that single-shot path and the real
//!   T-timestep temporal pipeline ([`workload`]), and
//! * a functional reference inference engine used as ground truth for the
//!   kernel implementations ([`reference`](mod@reference)).

pub mod compress;
pub mod encoding;
pub mod layer;
pub mod model;
pub mod neuron;
pub mod reference;
pub mod tensor;
pub mod workload;

pub use compress::{AerEvent, AerFrame, CompressedFcInput, CompressedIfmap};
pub use encoding::{TemporalEncoder, TemporalEncoding};
pub use layer::{ConvSpec, Layer, LayerKind, LinearSpec, PoolSpec};
pub use model::{Network, NetworkBuilder};
pub use neuron::{IzhiParams, IzhiState, LifParams, LifState, NeuronModel, NeuronState};
pub use reference::ReferenceEngine;
pub use tensor::{ActiveBits, ActiveChannels, SpikeMap, Tensor3, TensorShape};
pub use workload::{
    FiringProfile, SpikeWorkload, TemporalSparsityModel, WorkloadGenerator, WorkloadMode,
};
