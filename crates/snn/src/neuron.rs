//! Leaky integrate-and-fire (LIF) neuron dynamics.
//!
//! The paper's Eq. (1):
//!
//! ```text
//! i_m(t)  = Σ_n s_{i,n}(t) · w_n
//! v_m(t)  = v_m(t-1) · α + r · i_m(t) − v_rst · s_{o,m}(t)
//! s_{o,m} = 1 if v_m(t) ≥ v_th else 0
//! ```
//!
//! where the reset is applied by subtraction when the neuron fires.

use serde::{Deserialize, Serialize};

use crate::tensor::{SpikeMap, WORD_BITS};

/// Parameters of the LIF neuron model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifParams {
    /// Membrane decay factor `α` in `[0, 1]`.
    pub alpha: f32,
    /// Membrane resistance `r` (usually 1).
    pub resistance: f32,
    /// Firing threshold `v_th`.
    pub v_threshold: f32,
    /// Reset potential subtracted when the neuron fires.
    pub v_reset: f32,
}

impl LifParams {
    /// Typical parameters used for directly-trained deep SNNs.
    pub fn new(alpha: f32, v_threshold: f32) -> Self {
        LifParams { alpha, resistance: 1.0, v_threshold, v_reset: v_threshold }
    }

    /// Validate the parameters.
    ///
    /// # Errors
    ///
    /// Returns an error message if `alpha` is outside `[0, 1]` or the
    /// threshold is not positive.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(format!("decay factor alpha {} must lie in [0, 1]", self.alpha));
        }
        if self.v_threshold <= 0.0 {
            return Err("firing threshold must be positive".into());
        }
        Ok(())
    }
}

impl Default for LifParams {
    fn default() -> Self {
        LifParams::new(0.5, 1.0)
    }
}

/// Membrane state of a population of LIF neurons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifState {
    membrane: Vec<f32>,
}

impl Default for LifState {
    /// An empty population (scratch seed for [`LifState::reset_to`]).
    fn default() -> Self {
        LifState::new(0)
    }
}

impl LifState {
    /// A resting population of `n` neurons.
    pub fn new(n: usize) -> Self {
        LifState { membrane: vec![0.0; n] }
    }

    /// Number of neurons.
    pub fn len(&self) -> usize {
        self.membrane.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.membrane.is_empty()
    }

    /// Membrane potentials.
    pub fn membrane(&self) -> &[f32] {
        &self.membrane
    }

    /// Mutable membrane potentials (used by the kernels, which keep the
    /// neuron state dense in the scratchpad).
    pub fn membrane_mut(&mut self) -> &mut [f32] {
        &mut self.membrane
    }

    /// Advance every neuron by one timestep given its input current.
    ///
    /// Returns the output spike vector.
    ///
    /// # Panics
    ///
    /// Panics if `currents.len()` differs from the population size.
    pub fn step(&mut self, params: &LifParams, currents: &[f32]) -> Vec<bool> {
        assert_eq!(currents.len(), self.membrane.len(), "current vector length mismatch");
        let mut spikes = Vec::with_capacity(self.membrane.len());
        for (v, &i) in self.membrane.iter_mut().zip(currents.iter()) {
            *v = *v * params.alpha + params.resistance * i;
            let fired = *v >= params.v_threshold;
            if fired {
                *v -= params.v_reset;
            }
            spikes.push(fired);
        }
        spikes
    }

    /// Advance every neuron by one timestep, packing the threshold
    /// crossings directly into the words of `out` — 64 neurons per word,
    /// with no intermediate `bool` buffer. The temporal pipeline's no-alloc
    /// activation path.
    ///
    /// # Panics
    ///
    /// Panics if `currents.len()` or `out.shape().len()` differs from the
    /// population size.
    pub fn step_into_map(&mut self, params: &LifParams, currents: &[f32], out: &mut SpikeMap) {
        assert_eq!(currents.len(), self.membrane.len(), "current vector length mismatch");
        assert_eq!(
            out.shape().len(),
            self.membrane.len(),
            "spike map {} does not hold one bit per neuron of the population ({})",
            out.shape(),
            self.membrane.len(),
        );
        let words = out.words_mut();
        for (word, (vs, is)) in words
            .iter_mut()
            .zip(self.membrane.chunks_mut(WORD_BITS).zip(currents.chunks(WORD_BITS)))
        {
            let mut packed = 0u64;
            for (bit, (v, &i)) in vs.iter_mut().zip(is.iter()).enumerate() {
                *v = *v * params.alpha + params.resistance * i;
                if *v >= params.v_threshold {
                    *v -= params.v_reset;
                    packed |= 1 << bit;
                }
            }
            *word = packed;
        }
    }

    /// Advance one neuron (used by the per-neuron fused kernels).
    pub fn step_single(&mut self, params: &LifParams, neuron: usize, current: f32) -> bool {
        let v = &mut self.membrane[neuron];
        *v = *v * params.alpha + params.resistance * current;
        let fired = *v >= params.v_threshold;
        if fired {
            *v -= params.v_reset;
        }
        fired
    }

    /// Reset all membranes to the resting potential.
    pub fn reset(&mut self) {
        self.membrane.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Reset to a resting population of `n` neurons, reusing the existing
    /// allocation when its capacity allows (the batch driver's per-worker
    /// scratch path).
    pub fn reset_to(&mut self, n: usize) {
        self.membrane.clear();
        self.membrane.resize(n, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neuron_fires_when_threshold_is_reached() {
        let params = LifParams::new(0.5, 1.0);
        let mut state = LifState::new(1);
        assert_eq!(state.step(&params, &[0.6]), vec![false]);
        // v = 0.6*0.5 + 0.8 = 1.1 >= 1.0 -> fire, reset by subtraction.
        assert_eq!(state.step(&params, &[0.8]), vec![true]);
        assert!((state.membrane()[0] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn silent_input_decays_membrane() {
        let params = LifParams::new(0.5, 1.0);
        let mut state = LifState::new(1);
        state.membrane_mut()[0] = 0.8;
        state.step(&params, &[0.0]);
        assert!((state.membrane()[0] - 0.4).abs() < 1e-6);
    }

    #[test]
    fn step_single_matches_vector_step() {
        let params = LifParams::default();
        let mut a = LifState::new(3);
        let mut b = LifState::new(3);
        let currents = [0.3, 1.5, 0.9];
        let spikes_a = a.step(&params, &currents);
        let spikes_b: Vec<bool> = (0..3).map(|n| b.step_single(&params, n, currents[n])).collect();
        assert_eq!(spikes_a, spikes_b);
        assert_eq!(a.membrane(), b.membrane());
    }

    #[test]
    fn step_into_map_matches_vector_step() {
        use crate::tensor::TensorShape;
        let params = LifParams::default();
        let n = 130; // spans two full words plus a slack word
        let mut a = LifState::new(n);
        let mut b = LifState::new(n);
        let currents: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37) % 2.0).collect();
        let mut map = SpikeMap::silent(TensorShape::new(1, 1, n));
        for _ in 0..3 {
            let spikes = a.step(&params, &currents);
            b.step_into_map(&params, &currents, &mut map);
            assert_eq!(map.to_bools(), spikes);
            assert_eq!(a.membrane(), b.membrane());
        }
    }

    #[test]
    fn params_validation() {
        assert!(LifParams::new(0.5, 1.0).validate().is_ok());
        assert!(LifParams::new(1.5, 1.0).validate().is_err());
        assert!(LifParams::new(0.5, 0.0).validate().is_err());
    }

    #[test]
    fn reset_returns_to_rest() {
        let mut s = LifState::new(4);
        s.membrane_mut().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        s.reset();
        assert!(s.membrane().iter().all(|&v| v == 0.0));
    }
}
