//! Neuron dynamics: leaky integrate-and-fire (LIF) and Izhikevich.
//!
//! The paper's Eq. (1), the LIF model:
//!
//! ```text
//! i_m(t)  = Σ_n s_{i,n}(t) · w_n
//! v_m(t)  = v_m(t-1) · α + r · i_m(t) − v_rst · s_{o,m}(t)
//! s_{o,m} = 1 if v_m(t) ≥ v_th else 0
//! ```
//!
//! where the reset is applied by subtraction when the neuron fires.
//!
//! The Izhikevich model carries a second *recovery* variable `u` next to
//! the membrane potential `v` and advances both per timestep:
//!
//! ```text
//! v += 0.04·v² + 5·v + 140 − u + I
//! u += a·(b·v − u)
//! on spike (v ≥ v_th):  v = c,  u += d
//! ```
//!
//! Which model a layer runs is [`NeuronModel`]; the matching per-neuron
//! storage is the model-generic [`NeuronState`] used by the kernels, the
//! reference engine and the temporal pipeline alike.

use serde::{Deserialize, Serialize};

use crate::tensor::{SpikeMap, WORD_BITS};

/// Parameters of the LIF neuron model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifParams {
    /// Membrane decay factor `α` in `[0, 1]`.
    pub alpha: f32,
    /// Membrane resistance `r` (usually 1).
    pub resistance: f32,
    /// Firing threshold `v_th`.
    pub v_threshold: f32,
    /// Reset potential subtracted when the neuron fires.
    pub v_reset: f32,
}

impl LifParams {
    /// Typical parameters used for directly-trained deep SNNs.
    pub fn new(alpha: f32, v_threshold: f32) -> Self {
        LifParams { alpha, resistance: 1.0, v_threshold, v_reset: v_threshold }
    }

    /// Validate the parameters.
    ///
    /// # Errors
    ///
    /// Returns an error message if `alpha` is outside `[0, 1]` or the
    /// threshold is not positive.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(format!("decay factor alpha {} must lie in [0, 1]", self.alpha));
        }
        if self.v_threshold <= 0.0 || !self.v_threshold.is_finite() {
            return Err(format!("firing threshold {} must be positive", self.v_threshold));
        }
        if !self.resistance.is_finite() || self.resistance <= 0.0 {
            return Err(format!("membrane resistance {} must be positive", self.resistance));
        }
        if !self.v_reset.is_finite() || self.v_reset < 0.0 {
            return Err(format!("reset potential {} must be non-negative", self.v_reset));
        }
        Ok(())
    }
}

impl Default for LifParams {
    fn default() -> Self {
        LifParams::new(0.5, 1.0)
    }
}

/// Membrane state of a population of LIF neurons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifState {
    membrane: Vec<f32>,
}

impl Default for LifState {
    /// An empty population (scratch seed for [`LifState::reset_to`]).
    fn default() -> Self {
        LifState::new(0)
    }
}

impl LifState {
    /// A resting population of `n` neurons.
    pub fn new(n: usize) -> Self {
        LifState { membrane: vec![0.0; n] }
    }

    /// Number of neurons.
    pub fn len(&self) -> usize {
        self.membrane.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.membrane.is_empty()
    }

    /// Membrane potentials.
    pub fn membrane(&self) -> &[f32] {
        &self.membrane
    }

    /// Mutable membrane potentials (used by the kernels, which keep the
    /// neuron state dense in the scratchpad).
    pub fn membrane_mut(&mut self) -> &mut [f32] {
        &mut self.membrane
    }

    /// Advance every neuron by one timestep given its input current.
    ///
    /// Returns the output spike vector.
    ///
    /// # Panics
    ///
    /// Panics if `currents.len()` differs from the population size.
    pub fn step(&mut self, params: &LifParams, currents: &[f32]) -> Vec<bool> {
        assert_eq!(currents.len(), self.membrane.len(), "current vector length mismatch");
        let mut spikes = Vec::with_capacity(self.membrane.len());
        for (v, &i) in self.membrane.iter_mut().zip(currents.iter()) {
            *v = *v * params.alpha + params.resistance * i;
            let fired = *v >= params.v_threshold;
            if fired {
                *v -= params.v_reset;
            }
            spikes.push(fired);
        }
        spikes
    }

    /// Advance every neuron by one timestep, packing the threshold
    /// crossings directly into the words of `out` — 64 neurons per word,
    /// with no intermediate `bool` buffer. The temporal pipeline's no-alloc
    /// activation path.
    ///
    /// # Panics
    ///
    /// Panics if `currents.len()` or `out.shape().len()` differs from the
    /// population size.
    pub fn step_into_map(&mut self, params: &LifParams, currents: &[f32], out: &mut SpikeMap) {
        assert_eq!(currents.len(), self.membrane.len(), "current vector length mismatch");
        assert_eq!(
            out.shape().len(),
            self.membrane.len(),
            "spike map {} does not hold one bit per neuron of the population ({})",
            out.shape(),
            self.membrane.len(),
        );
        let words = out.words_mut();
        for (word, (vs, is)) in words
            .iter_mut()
            .zip(self.membrane.chunks_mut(WORD_BITS).zip(currents.chunks(WORD_BITS)))
        {
            let mut packed = 0u64;
            for (bit, (v, &i)) in vs.iter_mut().zip(is.iter()).enumerate() {
                *v = *v * params.alpha + params.resistance * i;
                if *v >= params.v_threshold {
                    *v -= params.v_reset;
                    packed |= 1 << bit;
                }
            }
            *word = packed;
        }
    }

    /// Advance one neuron (used by the per-neuron fused kernels).
    pub fn step_single(&mut self, params: &LifParams, neuron: usize, current: f32) -> bool {
        let v = &mut self.membrane[neuron];
        *v = *v * params.alpha + params.resistance * current;
        let fired = *v >= params.v_threshold;
        if fired {
            *v -= params.v_reset;
        }
        fired
    }

    /// Reset all membranes to the resting potential.
    pub fn reset(&mut self) {
        self.membrane.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Reset to a resting population of `n` neurons, reusing the existing
    /// allocation when its capacity allows (the batch driver's per-worker
    /// scratch path).
    pub fn reset_to(&mut self, n: usize) {
        self.membrane.clear();
        self.membrane.resize(n, 0.0);
    }
}

/// Parameters of the Izhikevich neuron model.
///
/// The quadratic two-variable dynamics of Izhikevich (2003):
///
/// ```text
/// v += 0.04·v² + 5·v + 140 − u + I
/// u += a·(b·v − u)
/// on spike (v ≥ v_th):  v = c,  u += d
/// ```
///
/// The defaults are the canonical *regular spiking* cortical cell
/// (`a = 0.02, b = 0.2, c = −65, d = 8`, threshold 30 mV).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IzhiParams {
    /// Recovery time scale `a` (smaller is slower recovery).
    pub a: f32,
    /// Recovery sensitivity `b` to subthreshold membrane fluctuations.
    pub b: f32,
    /// After-spike membrane reset potential `c` (mV).
    pub c: f32,
    /// After-spike recovery increment `d`.
    pub d: f32,
    /// Firing threshold `v_th` (mV).
    pub v_threshold: f32,
}

impl IzhiParams {
    /// The canonical regular-spiking parameter set.
    pub fn regular_spiking() -> Self {
        IzhiParams { a: 0.02, b: 0.2, c: -65.0, d: 8.0, v_threshold: 30.0 }
    }

    /// The fast-spiking interneuron parameter set (`a = 0.1`).
    pub fn fast_spiking() -> Self {
        IzhiParams { a: 0.1, ..IzhiParams::regular_spiking() }
    }

    /// Resting membrane potential: the after-spike reset `c`.
    pub fn v_rest(&self) -> f32 {
        self.c
    }

    /// Resting recovery value `u = b·v_rest`.
    pub fn u_rest(&self) -> f32 {
        self.b * self.c
    }

    /// Validate the parameters.
    ///
    /// # Errors
    ///
    /// Returns an error message if any parameter is non-finite, the
    /// recovery time scale `a` is not in `(0, 1]`, or the threshold does
    /// not lie strictly above the reset potential `c`.
    pub fn validate(&self) -> Result<(), String> {
        for (name, value) in
            [("a", self.a), ("b", self.b), ("c", self.c), ("d", self.d), ("v_th", self.v_threshold)]
        {
            if !value.is_finite() {
                return Err(format!("izhikevich parameter {name} = {value} must be finite"));
            }
        }
        if self.a <= 0.0 || self.a > 1.0 {
            return Err(format!("recovery time scale a {} must lie in (0, 1]", self.a));
        }
        if self.v_threshold <= self.c {
            return Err(format!(
                "firing threshold {} must exceed the reset potential c {}",
                self.v_threshold, self.c
            ));
        }
        Ok(())
    }

    /// Advance one neuron by one quantized Euler step; the single source
    /// of the Izhikevich arithmetic shared by every stepping path, so the
    /// scalar, vector and word-packed trajectories are bit-identical.
    #[inline]
    fn step_one(&self, v: &mut f32, u: &mut f32, current: f32) -> bool {
        let v0 = *v;
        let v1 = v0 + (0.04 * v0 * v0 + 5.0 * v0 + 140.0 - *u + current);
        let u1 = *u + self.a * (self.b * v1 - *u);
        let fired = v1 >= self.v_threshold;
        if fired {
            *v = self.c;
            *u = u1 + self.d;
        } else {
            *v = v1;
            *u = u1;
        }
        fired
    }
}

impl Default for IzhiParams {
    fn default() -> Self {
        IzhiParams::regular_spiking()
    }
}

/// Which neuron dynamics a layer runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NeuronModel {
    /// Leaky integrate-and-fire (one state variable, the paper's Eq. 1).
    Lif(LifParams),
    /// Izhikevich (two state variables `v` and `u`).
    Izhikevich(IzhiParams),
}

impl NeuronModel {
    /// Validate the model parameters.
    ///
    /// # Errors
    ///
    /// Propagates the parameter-set validation of the underlying model.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            NeuronModel::Lif(p) => p.validate(),
            NeuronModel::Izhikevich(p) => p.validate(),
        }
    }

    /// Number of per-neuron state variables the model carries (`v`, and
    /// `u` for Izhikevich). This is what sizes the membrane DMA tiles.
    pub fn state_vars(&self) -> usize {
        match self {
            NeuronModel::Lif(_) => 1,
            NeuronModel::Izhikevich(_) => 2,
        }
    }

    /// Stable small-integer discriminator, folded into kernel cache-key
    /// classes so two models never cross-serve cached programs.
    pub fn cache_class(&self) -> u32 {
        match self {
            NeuronModel::Lif(_) => 0,
            NeuronModel::Izhikevich(_) => 1,
        }
    }

    /// The scenario-file spelling of this model.
    pub fn as_str(&self) -> &'static str {
        match self {
            NeuronModel::Lif(_) => "lif",
            NeuronModel::Izhikevich(_) => "izhikevich",
        }
    }
}

impl Default for NeuronModel {
    fn default() -> Self {
        NeuronModel::Lif(LifParams::default())
    }
}

impl From<LifParams> for NeuronModel {
    fn from(params: LifParams) -> Self {
        NeuronModel::Lif(params)
    }
}

impl From<IzhiParams> for NeuronModel {
    fn from(params: IzhiParams) -> Self {
        NeuronModel::Izhikevich(params)
    }
}

impl std::fmt::Display for NeuronModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// State of a population of Izhikevich neurons: membrane `v` plus the
/// recovery variable `u`, both dense `f32` vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IzhiState {
    v: Vec<f32>,
    u: Vec<f32>,
}

impl IzhiState {
    /// A resting population of `n` neurons (`v = c`, `u = b·c`).
    pub fn new(params: &IzhiParams, n: usize) -> Self {
        IzhiState { v: vec![params.v_rest(); n], u: vec![params.u_rest(); n] }
    }

    /// Number of neurons.
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Membrane potentials `v`.
    pub fn v(&self) -> &[f32] {
        &self.v
    }

    /// Recovery variables `u`.
    pub fn u(&self) -> &[f32] {
        &self.u
    }

    /// Advance every neuron by one timestep; returns the spike vector.
    ///
    /// # Panics
    ///
    /// Panics if `currents.len()` differs from the population size.
    pub fn step(&mut self, params: &IzhiParams, currents: &[f32]) -> Vec<bool> {
        assert_eq!(currents.len(), self.v.len(), "current vector length mismatch");
        let mut spikes = Vec::with_capacity(self.v.len());
        for ((v, u), &i) in self.v.iter_mut().zip(self.u.iter_mut()).zip(currents.iter()) {
            spikes.push(params.step_one(v, u, i));
        }
        spikes
    }

    /// Advance every neuron, packing the spikes word-wise into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `currents.len()` or `out.shape().len()` differs from the
    /// population size.
    pub fn step_into_map(&mut self, params: &IzhiParams, currents: &[f32], out: &mut SpikeMap) {
        assert_eq!(currents.len(), self.v.len(), "current vector length mismatch");
        assert_eq!(
            out.shape().len(),
            self.v.len(),
            "spike map {} does not hold one bit per neuron of the population ({})",
            out.shape(),
            self.v.len(),
        );
        let words = out.words_mut();
        for (word, ((vs, us), is)) in words.iter_mut().zip(
            self.v
                .chunks_mut(WORD_BITS)
                .zip(self.u.chunks_mut(WORD_BITS))
                .zip(currents.chunks(WORD_BITS)),
        ) {
            let mut packed = 0u64;
            for (bit, ((v, u), &i)) in vs.iter_mut().zip(us.iter_mut()).zip(is.iter()).enumerate() {
                if params.step_one(v, u, i) {
                    packed |= 1 << bit;
                }
            }
            *word = packed;
        }
    }

    /// Advance one neuron (used by the per-neuron fused kernels).
    pub fn step_single(&mut self, params: &IzhiParams, neuron: usize, current: f32) -> bool {
        let (v, u) = (&mut self.v[neuron], &mut self.u[neuron]);
        params.step_one(v, u, current)
    }

    /// Reset to a resting population of `n` neurons, reusing allocations.
    pub fn reset_to(&mut self, params: &IzhiParams, n: usize) {
        self.v.clear();
        self.v.resize(n, params.v_rest());
        self.u.clear();
        self.u.resize(n, params.u_rest());
    }
}

/// Model-generic per-neuron state: what the kernels, the reference engine
/// and the temporal pipeline carry per layer. The variant always matches
/// the layer's [`NeuronModel`]; stepping with a mismatched model panics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NeuronState {
    /// One membrane potential per neuron.
    Lif(LifState),
    /// Membrane plus recovery variable per neuron.
    Izhikevich(IzhiState),
}

impl Default for NeuronState {
    /// An empty LIF population (scratch seed for [`NeuronState::reset_for`]).
    fn default() -> Self {
        NeuronState::Lif(LifState::default())
    }
}

impl NeuronState {
    /// A resting population of `n` neurons of the given model.
    pub fn new(model: &NeuronModel, n: usize) -> Self {
        match model {
            NeuronModel::Lif(_) => NeuronState::Lif(LifState::new(n)),
            NeuronModel::Izhikevich(p) => NeuronState::Izhikevich(IzhiState::new(p, n)),
        }
    }

    /// A resting LIF population of `n` neurons.
    pub fn lif(n: usize) -> Self {
        NeuronState::Lif(LifState::new(n))
    }

    /// Number of neurons.
    pub fn len(&self) -> usize {
        match self {
            NeuronState::Lif(s) => s.len(),
            NeuronState::Izhikevich(s) => s.len(),
        }
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membrane potentials `v`.
    pub fn membrane(&self) -> &[f32] {
        match self {
            NeuronState::Lif(s) => s.membrane(),
            NeuronState::Izhikevich(s) => s.v(),
        }
    }

    /// Mutable membrane potentials (used by the kernels, which keep the
    /// neuron state dense in the scratchpad).
    pub fn membrane_mut(&mut self) -> &mut [f32] {
        match self {
            NeuronState::Lif(s) => s.membrane_mut(),
            NeuronState::Izhikevich(s) => &mut s.v,
        }
    }

    /// Recovery variables `u` — empty for LIF populations.
    pub fn recovery(&self) -> &[f32] {
        match self {
            NeuronState::Lif(_) => &[],
            NeuronState::Izhikevich(s) => s.u(),
        }
    }

    /// Number of per-neuron state variables this state carries.
    pub fn state_vars(&self) -> usize {
        match self {
            NeuronState::Lif(_) => 1,
            NeuronState::Izhikevich(_) => 2,
        }
    }

    /// Advance every neuron by one timestep of `model`; returns the spike
    /// vector.
    ///
    /// # Panics
    ///
    /// Panics if the model does not match the state variant or the current
    /// vector length differs from the population size.
    pub fn step(&mut self, model: &NeuronModel, currents: &[f32]) -> Vec<bool> {
        match (self, model) {
            (NeuronState::Lif(s), NeuronModel::Lif(p)) => s.step(p, currents),
            (NeuronState::Izhikevich(s), NeuronModel::Izhikevich(p)) => s.step(p, currents),
            (state, model) => {
                panic!("neuron state ({} vars) does not match model `{model}`", state.state_vars())
            }
        }
    }

    /// Advance every neuron, packing the spikes word-wise into `out`.
    ///
    /// # Panics
    ///
    /// Same contract as [`NeuronState::step`], plus the spike-map shape
    /// check of the underlying state.
    pub fn step_into_map(&mut self, model: &NeuronModel, currents: &[f32], out: &mut SpikeMap) {
        match (self, model) {
            (NeuronState::Lif(s), NeuronModel::Lif(p)) => s.step_into_map(p, currents, out),
            (NeuronState::Izhikevich(s), NeuronModel::Izhikevich(p)) => {
                s.step_into_map(p, currents, out)
            }
            (state, model) => {
                panic!("neuron state ({} vars) does not match model `{model}`", state.state_vars())
            }
        }
    }

    /// Advance one neuron (used by the per-neuron fused kernels).
    ///
    /// # Panics
    ///
    /// Panics if the model does not match the state variant.
    pub fn step_single(&mut self, model: &NeuronModel, neuron: usize, current: f32) -> bool {
        match (self, model) {
            (NeuronState::Lif(s), NeuronModel::Lif(p)) => s.step_single(p, neuron, current),
            (NeuronState::Izhikevich(s), NeuronModel::Izhikevich(p)) => {
                s.step_single(p, neuron, current)
            }
            (state, model) => {
                panic!("neuron state ({} vars) does not match model `{model}`", state.state_vars())
            }
        }
    }

    /// Reset to a resting population of `n` neurons of `model`, switching
    /// the variant when needed and reusing allocations when it already
    /// matches (the per-worker scratch path).
    pub fn reset_for(&mut self, model: &NeuronModel, n: usize) {
        match (&mut *self, model) {
            (NeuronState::Lif(s), NeuronModel::Lif(_)) => s.reset_to(n),
            (NeuronState::Izhikevich(s), NeuronModel::Izhikevich(p)) => s.reset_to(p, n),
            (state, model) => *state = NeuronState::new(model, n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neuron_fires_when_threshold_is_reached() {
        let params = LifParams::new(0.5, 1.0);
        let mut state = LifState::new(1);
        assert_eq!(state.step(&params, &[0.6]), vec![false]);
        // v = 0.6*0.5 + 0.8 = 1.1 >= 1.0 -> fire, reset by subtraction.
        assert_eq!(state.step(&params, &[0.8]), vec![true]);
        assert!((state.membrane()[0] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn silent_input_decays_membrane() {
        let params = LifParams::new(0.5, 1.0);
        let mut state = LifState::new(1);
        state.membrane_mut()[0] = 0.8;
        state.step(&params, &[0.0]);
        assert!((state.membrane()[0] - 0.4).abs() < 1e-6);
    }

    #[test]
    fn step_single_matches_vector_step() {
        let params = LifParams::default();
        let mut a = LifState::new(3);
        let mut b = LifState::new(3);
        let currents = [0.3, 1.5, 0.9];
        let spikes_a = a.step(&params, &currents);
        let spikes_b: Vec<bool> = (0..3).map(|n| b.step_single(&params, n, currents[n])).collect();
        assert_eq!(spikes_a, spikes_b);
        assert_eq!(a.membrane(), b.membrane());
    }

    #[test]
    fn step_into_map_matches_vector_step() {
        use crate::tensor::TensorShape;
        let params = LifParams::default();
        let n = 130; // spans two full words plus a slack word
        let mut a = LifState::new(n);
        let mut b = LifState::new(n);
        let currents: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37) % 2.0).collect();
        let mut map = SpikeMap::silent(TensorShape::new(1, 1, n));
        for _ in 0..3 {
            let spikes = a.step(&params, &currents);
            b.step_into_map(&params, &currents, &mut map);
            assert_eq!(map.to_bools(), spikes);
            assert_eq!(a.membrane(), b.membrane());
        }
    }

    #[test]
    fn params_validation() {
        assert!(LifParams::new(0.5, 1.0).validate().is_ok());
        assert!(LifParams::new(1.5, 1.0).validate().is_err());
        assert!(LifParams::new(0.5, 0.0).validate().is_err());
    }

    #[test]
    fn reset_returns_to_rest() {
        let mut s = LifState::new(4);
        s.membrane_mut().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        s.reset();
        assert!(s.membrane().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn izhikevich_rests_at_c_and_spikes_reset_to_c() {
        let params = IzhiParams::regular_spiking();
        let mut state = IzhiState::new(&params, 1);
        assert_eq!(state.v(), &[-65.0]);
        assert_eq!(state.u(), &[params.b * -65.0]);
        // Strong sustained current drives the neuron over threshold within
        // a few steps; the spike resets v to c and bumps u by d.
        let mut fired = None;
        for step in 0..200 {
            let u_before = state.u()[0];
            if state.step(&params, &[20.0])[0] {
                fired = Some((step, u_before));
                break;
            }
        }
        let (_, u_before) = fired.expect("a 20 mV current must elicit a spike");
        assert_eq!(state.v()[0], params.c, "spike resets v to c");
        assert!(state.u()[0] > u_before, "spike bumps u by d");
    }

    #[test]
    fn izhikevich_step_paths_are_bit_identical() {
        use crate::tensor::TensorShape;
        let params = IzhiParams::regular_spiking();
        let n = 130; // spans two full words plus a slack word
        let mut a = IzhiState::new(&params, n);
        let mut b = IzhiState::new(&params, n);
        let mut c = IzhiState::new(&params, n);
        let currents: Vec<f32> = (0..n).map(|i| (i as f32 * 0.83) % 9.0).collect();
        let mut map = SpikeMap::silent(TensorShape::new(1, 1, n));
        for _ in 0..6 {
            let spikes = a.step(&params, &currents);
            b.step_into_map(&params, &currents, &mut map);
            let singles: Vec<bool> =
                (0..n).map(|i| c.step_single(&params, i, currents[i])).collect();
            assert_eq!(map.to_bools(), spikes);
            assert_eq!(singles, spikes);
            assert_eq!(a.v(), b.v());
            assert_eq!(a.u(), b.u());
            assert_eq!(a.v(), c.v());
            assert_eq!(a.u(), c.u());
        }
    }

    #[test]
    fn izhi_params_validation() {
        assert!(IzhiParams::regular_spiking().validate().is_ok());
        assert!(IzhiParams { a: 0.0, ..IzhiParams::regular_spiking() }.validate().is_err());
        assert!(IzhiParams { a: f32::NAN, ..IzhiParams::regular_spiking() }.validate().is_err());
        assert!(
            IzhiParams { v_threshold: -70.0, ..IzhiParams::regular_spiking() }.validate().is_err(),
            "threshold below the reset potential is rejected"
        );
    }

    #[test]
    fn neuron_state_dispatches_and_resets_per_model() {
        let lif = NeuronModel::Lif(LifParams::default());
        let izhi = NeuronModel::Izhikevich(IzhiParams::regular_spiking());
        assert_eq!(lif.state_vars(), 1);
        assert_eq!(izhi.state_vars(), 2);
        assert_ne!(lif.cache_class(), izhi.cache_class());

        let mut state = NeuronState::default();
        state.reset_for(&lif, 4);
        assert_eq!(state.len(), 4);
        assert_eq!(state.state_vars(), 1);
        assert!(state.recovery().is_empty());
        state.step(&lif, &[0.3, 0.2, 0.1, 0.0]);

        // Switching the model re-seats the variant and rests it.
        state.reset_for(&izhi, 3);
        assert_eq!(state.len(), 3);
        assert_eq!(state.state_vars(), 2);
        assert_eq!(state.membrane(), &[-65.0; 3]);
        assert_eq!(state.recovery().len(), 3);
        let spikes = state.step(&izhi, &[0.0; 3]);
        assert_eq!(spikes, vec![false; 3]);
    }

    #[test]
    #[should_panic(expected = "does not match model")]
    fn stepping_with_a_mismatched_model_panics() {
        let mut state = NeuronState::lif(2);
        state.step(&NeuronModel::Izhikevich(IzhiParams::regular_spiking()), &[0.0, 0.0]);
    }

    #[test]
    fn neuron_state_lif_path_matches_plain_lif_state() {
        let params = LifParams::new(0.5, 1.0);
        let model = NeuronModel::Lif(params);
        let mut plain = LifState::new(3);
        let mut generic = NeuronState::new(&model, 3);
        let currents = [0.4, 1.3, 0.9];
        for _ in 0..4 {
            let a = plain.step(&params, &currents);
            let b = generic.step(&model, &currents);
            assert_eq!(a, b);
            assert_eq!(plain.membrane(), generic.membrane());
        }
    }
}
