//! Network container and the S-VGG11 model used in the paper's evaluation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::layer::{ConvSpec, Layer, LayerKind, LinearSpec, PoolSpec};
use crate::neuron::{LifParams, NeuronModel};
use crate::tensor::TensorShape;

/// A feed-forward spiking neural network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// Name of the network (e.g. `S-VGG11`).
    pub name: String,
    layers: Vec<Layer>,
}

impl Network {
    /// Layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable layer access.
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total number of weights across all layers.
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(|l| l.kind.weight_count()).sum()
    }

    /// Total dense synaptic operations of one timestep.
    pub fn total_dense_synops(&self) -> u64 {
        self.layers.iter().map(|l| l.kind.dense_synops()).sum()
    }

    /// Set every layer's neuron model (how the scenario `[neuron_model]`
    /// table applies one model network-wide).
    pub fn set_neuron_model(&mut self, model: NeuronModel) {
        for layer in &mut self.layers {
            layer.neuron = model;
        }
    }

    /// Validate that consecutive layer shapes are compatible.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first incompatible layer pair.
    pub fn validate(&self) -> Result<(), String> {
        let mut prev_out: Option<usize> = None;
        for layer in &self.layers {
            let in_features = match &layer.kind {
                LayerKind::Conv(c) => c.input.len(),
                LayerKind::AvgPool(p) => p.input.len(),
                LayerKind::Linear(l) => l.in_features,
            };
            if let Some(prev) = prev_out {
                if prev != in_features {
                    return Err(format!(
                        "layer {} expects {} inputs but receives {}",
                        layer.name, in_features, prev
                    ));
                }
            }
            prev_out = Some(match &layer.kind {
                LayerKind::Conv(c) => c.output().len(),
                LayerKind::AvgPool(p) => p.output().len(),
                LayerKind::Linear(l) => l.out_features,
            });
        }
        Ok(())
    }

    /// The low-latency, single-timestep S-VGG11 network evaluated in the
    /// paper (CIFAR-10, 32x32 RGB input, spike encoding in the first layer).
    ///
    /// Layer ifmap shapes match Fig. 3a: 34x34x3, 34x34x64, 18x18x128,
    /// 18x18x256, 10x10x256, 10x10x512, followed by two fully connected
    /// layers. Weights are randomly initialized with the given `seed`
    /// (the evaluation metrics depend on shapes and firing statistics,
    /// not on trained weights).
    pub fn svgg11(seed: u64) -> Network {
        let lif = LifParams::new(0.5, 1.0);
        let conv = |input: TensorShape, out_channels: usize, pool: bool| ConvSpec {
            input,
            out_channels,
            kh: 3,
            kw: 3,
            stride: 1,
            padding: 1,
            pool,
        };

        let mut b = NetworkBuilder::new("S-VGG11");
        // conv1 performs spike encoding of the dense RGB input.
        b = b
            .conv("conv1", conv(TensorShape::new(32, 32, 3), 64, false), lif)
            .conv("conv2", conv(TensorShape::new(32, 32, 64), 128, true), lif)
            .conv("conv3", conv(TensorShape::new(16, 16, 128), 256, false), lif)
            .conv("conv4", conv(TensorShape::new(16, 16, 256), 256, true), lif)
            .conv("conv5", conv(TensorShape::new(8, 8, 256), 512, false), lif)
            .conv("conv6", conv(TensorShape::new(8, 8, 512), 512, true), lif)
            .linear("fc7", LinearSpec { in_features: 4 * 4 * 512, out_features: 1024 }, lif)
            .linear("fc8", LinearSpec { in_features: 1024, out_features: 10 }, lif);
        let mut net = b.build_with_random_weights(seed, 0.05);
        net.layers[0].encodes_input = true;
        net
    }
}

/// Incremental builder for [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    name: String,
    layers: Vec<Layer>,
}

impl NetworkBuilder {
    /// Start building a network with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        NetworkBuilder { name: name.into(), layers: Vec::new() }
    }

    /// Append a convolutional layer (any [`NeuronModel`]-convertible
    /// neuron parameters, e.g. bare [`LifParams`]).
    pub fn conv(mut self, name: &str, spec: ConvSpec, neuron: impl Into<NeuronModel>) -> Self {
        self.layers.push(Layer::new(name, LayerKind::Conv(spec), neuron));
        self
    }

    /// Append a spike average-pooling layer.
    pub fn avg_pool(mut self, name: &str, spec: PoolSpec, neuron: impl Into<NeuronModel>) -> Self {
        self.layers.push(Layer::new(name, LayerKind::AvgPool(spec), neuron));
        self
    }

    /// Append a fully connected layer.
    pub fn linear(mut self, name: &str, spec: LinearSpec, neuron: impl Into<NeuronModel>) -> Self {
        self.layers.push(Layer::new(name, LayerKind::Linear(spec), neuron));
        self
    }

    /// Replace every already-appended layer's neuron model (scenario
    /// overrides apply one model network-wide).
    pub fn with_neuron_model(mut self, model: NeuronModel) -> Self {
        for layer in &mut self.layers {
            layer.neuron = model;
        }
        self
    }

    /// Finish with zero weights.
    pub fn build(self) -> Network {
        Network { name: self.name, layers: self.layers }
    }

    /// Finish and randomize all weights from `seed`.
    pub fn build_with_random_weights(self, seed: u64, scale: f32) -> Network {
        let mut net = self.build();
        let mut rng = StdRng::seed_from_u64(seed);
        for layer in &mut net.layers {
            layer.randomize_weights(&mut rng, scale);
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svgg11_has_eight_layers_with_paper_shapes() {
        let net = Network::svgg11(7);
        assert_eq!(net.len(), 8);
        let shapes: Vec<TensorShape> = net
            .layers()
            .iter()
            .filter_map(|l| match &l.kind {
                LayerKind::Conv(c) => Some(c.padded_input()),
                LayerKind::AvgPool(_) | LayerKind::Linear(_) => None,
            })
            .collect();
        assert_eq!(shapes[0], TensorShape::new(34, 34, 3));
        assert_eq!(shapes[1], TensorShape::new(34, 34, 64));
        assert_eq!(shapes[2], TensorShape::new(18, 18, 128));
        assert_eq!(shapes[3], TensorShape::new(18, 18, 256));
        assert_eq!(shapes[4], TensorShape::new(10, 10, 256));
        assert_eq!(shapes[5], TensorShape::new(10, 10, 512));
        assert!(net.layers()[0].encodes_input);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn svgg11_shapes_chain_correctly() {
        let net = Network::svgg11(1);
        // conv6 pools 8x8x512 down to 4x4x512 which feeds fc7.
        if let LayerKind::Linear(l) = &net.layers()[6].kind {
            assert_eq!(l.in_features, 4 * 4 * 512);
        } else {
            panic!("layer 7 must be fully connected");
        }
    }

    #[test]
    fn validation_catches_shape_mismatch() {
        let lif = LifParams::default();
        let net = NetworkBuilder::new("bad")
            .conv(
                "c1",
                ConvSpec {
                    input: TensorShape::new(8, 8, 4),
                    out_channels: 8,
                    kh: 3,
                    kw: 3,
                    stride: 1,
                    padding: 1,
                    pool: false,
                },
                lif,
            )
            .linear("fc", LinearSpec { in_features: 99, out_features: 10 }, lif)
            .build();
        assert!(net.validate().is_err());
    }

    #[test]
    fn random_weights_are_deterministic_per_seed() {
        let a = Network::svgg11(123);
        let b = Network::svgg11(123);
        let c = Network::svgg11(124);
        assert_eq!(a.layers()[0].weights, b.layers()[0].weights);
        assert_ne!(a.layers()[0].weights, c.layers()[0].weights);
    }

    #[test]
    fn synop_totals_are_positive() {
        let net = Network::svgg11(3);
        assert!(net.total_dense_synops() > 100_000_000);
        assert!(net.total_weights() > 5_000_000);
    }
}
