//! Spike encodings for dense (image) inputs.
//!
//! Most directly-trained SNNs, including the S-VGG11 used by the paper, let
//! the first convolutional layer perform the encoding: the raw pixel values
//! are interpreted as input currents (direct encoding). A Poisson rate
//! encoding is also provided for event-style workloads and for the
//! multi-timestep accelerator comparison of Fig. 5.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::tensor::{SpikeMap, Tensor3, TensorShape};

/// How a dense input image becomes the first layer's input at each
/// timestep of a temporal run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TemporalEncoding {
    /// Poisson rate coding: each pixel spikes with probability equal to its
    /// normalized intensity, independently per timestep. The encoding
    /// layer's per-step input is a binary 0/1 current tensor.
    Rate,
    /// Direct coding: the image itself is the input-current tensor of the
    /// encoding layer at every timestep (the scheme the paper's directly
    /// trained S-VGG11 uses).
    Direct,
}

impl TemporalEncoding {
    /// The scenario-file spelling of this encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            TemporalEncoding::Rate => "rate",
            TemporalEncoding::Direct => "direct",
        }
    }
}

impl std::fmt::Display for TemporalEncoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-timestep encoder of one sample's dense input image.
///
/// Each step is seeded independently from `(seed, step)`, so encoding
/// step `t` is a pure function — the temporal pipeline stays bit-identical
/// no matter how samples are scheduled across workers or shards.
///
/// # Example
///
/// ```
/// use spikestream_snn::encoding::{TemporalEncoder, TemporalEncoding};
/// use spikestream_snn::tensor::{Tensor3, TensorShape};
///
/// let mut image = Tensor3::zeros(TensorShape::new(2, 2, 1));
/// image.set(0, 0, 0, 1.0);
/// let encoder = TemporalEncoder::new(&image, TemporalEncoding::Rate, 7);
/// let mut step = Tensor3::zeros(image.shape());
/// encoder.encode_step_into(0, &mut step);
/// // A pixel at intensity 1.0 always spikes; zeros never do.
/// assert_eq!(step.get(0, 0, 0), 1.0);
/// assert_eq!(step.get(1, 1, 0), 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TemporalEncoder<'a> {
    image: &'a Tensor3,
    encoding: TemporalEncoding,
    seed: u64,
}

impl<'a> TemporalEncoder<'a> {
    /// Create an encoder over a (padded) input image.
    pub fn new(image: &'a Tensor3, encoding: TemporalEncoding, seed: u64) -> Self {
        TemporalEncoder { image, encoding, seed }
    }

    /// The encoding scheme in use.
    pub fn encoding(&self) -> TemporalEncoding {
        self.encoding
    }

    /// Write the encoding-layer input of timestep `step` into `out`,
    /// reusing its allocation (the temporal hot loop's no-alloc path).
    ///
    /// # Panics
    ///
    /// Panics if `out` does not have the image's shape.
    pub fn encode_step_into(&self, step: usize, out: &mut Tensor3) {
        assert_eq!(out.shape(), self.image.shape(), "encoder output shape mismatch");
        match self.encoding {
            TemporalEncoding::Direct => out.data_mut().copy_from_slice(self.image.data()),
            TemporalEncoding::Rate => {
                let mut rng = self.step_rng(step);
                for (o, &v) in out.data_mut().iter_mut().zip(self.image.data()) {
                    *o = if rng.gen::<f32>() < v.clamp(0.0, 1.0) { 1.0 } else { 0.0 };
                }
            }
        }
    }

    /// The spikes of timestep `step` as a binary map (rate coding), or the
    /// thresholded nonzero pixels (direct coding). Used by the AER framing
    /// of temporal runs.
    pub fn encode_step_spikes(&self, step: usize) -> SpikeMap {
        let shape = self.image.shape();
        let data = self.image.data();
        match self.encoding {
            TemporalEncoding::Rate => {
                // `from_fn` visits linear indices in ascending order, so the
                // per-pixel RNG draw sequence is identical to the unpacked
                // representation — the packing is bit-transparent.
                let mut rng = self.step_rng(step);
                SpikeMap::from_fn(shape, |i| rng.gen::<f32>() < data[i].clamp(0.0, 1.0))
            }
            TemporalEncoding::Direct => SpikeMap::from_fn(shape, |i| data[i] != 0.0),
        }
    }

    /// Per-step RNG, deterministic in `(seed, step)` alone.
    fn step_rng(&self, step: usize) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ (step as u64).wrapping_mul(0x6C62_272E_07BB_0143))
    }
}

/// Pad a dense image with `padding` zero pixels on each border (HWC layout).
pub fn pad_image(image: &Tensor3, padding: usize) -> Tensor3 {
    let s = image.shape();
    let padded_shape = TensorShape::new(s.h + 2 * padding, s.w + 2 * padding, s.c);
    let mut out = Tensor3::zeros(padded_shape);
    for h in 0..s.h {
        for w in 0..s.w {
            for c in 0..s.c {
                out.set(h + padding, w + padding, c, image.get(h, w, c));
            }
        }
    }
    out
}

/// Pad a spike map with a silent border of `padding` positions.
pub fn pad_spikes(map: &SpikeMap, padding: usize) -> SpikeMap {
    let s = map.shape();
    if padding == 0 {
        return map.clone();
    }
    let padded_shape = TensorShape::new(s.h + 2 * padding, s.w + 2 * padding, s.c);
    let mut out = SpikeMap::silent(padded_shape);
    // Each input row is one contiguous run of w*c bits; copy it word-wise
    // into its shifted offset in the padded map.
    let row_bits = s.w * s.c;
    let mut row = vec![0u64; row_bits.div_ceil(64)];
    for h in 0..s.h {
        row.fill(0);
        map.or_range_into(h * row_bits, row_bits, &mut row);
        let start = ((h + padding) * padded_shape.w + padding) * s.c;
        out.or_range_from(start, row_bits, &row);
    }
    out
}

/// Direct encoding: the image itself is the input-current tensor of the
/// first layer (values in `[0, 1]`). This is a no-op view kept as a named
/// function so call sites document their intent.
pub fn direct_encode(image: &Tensor3) -> &Tensor3 {
    image
}

/// Poisson rate encoding: each pixel spikes with probability equal to its
/// normalized intensity at every timestep.
pub fn poisson_encode<R: Rng>(image: &Tensor3, rng: &mut R) -> SpikeMap {
    let data = image.data();
    SpikeMap::from_fn(image.shape(), |i| rng.gen::<f32>() < data[i].clamp(0.0, 1.0))
}

/// Generate a synthetic CIFAR-10-like RGB image with smooth spatial
/// structure (values in `[0, 1]`), used by the examples and workloads.
pub fn synthetic_image<R: Rng>(shape: TensorShape, rng: &mut R) -> Tensor3 {
    let mut img = Tensor3::zeros(shape);
    // Low-frequency pattern plus noise so that direct encoding produces a
    // realistic mix of strong and weak input currents.
    let fx = rng.gen_range(0.5..2.0);
    let fy = rng.gen_range(0.5..2.0);
    for h in 0..shape.h {
        for w in 0..shape.w {
            for c in 0..shape.c {
                let base = 0.5
                    + 0.4
                        * ((h as f32 * fy / shape.h as f32 * std::f32::consts::TAU).sin()
                            * (w as f32 * fx / shape.w as f32 * std::f32::consts::TAU).cos());
                let noise: f32 = rng.gen_range(-0.1..0.1);
                img.set(h, w, c, (base + noise + c as f32 * 0.02).clamp(0.0, 1.0));
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn padding_preserves_interior_and_zeroes_border() {
        let mut img = Tensor3::zeros(TensorShape::new(2, 2, 1));
        img.set(0, 0, 0, 1.0);
        img.set(1, 1, 0, 2.0);
        let padded = pad_image(&img, 1);
        assert_eq!(padded.shape(), TensorShape::new(4, 4, 1));
        assert_eq!(padded.get(1, 1, 0), 1.0);
        assert_eq!(padded.get(2, 2, 0), 2.0);
        assert_eq!(padded.get(0, 0, 0), 0.0);
    }

    #[test]
    fn spike_padding_keeps_spike_count() {
        let mut m = SpikeMap::silent(TensorShape::new(2, 2, 3));
        m.set(0, 1, 2, true);
        let p = pad_spikes(&m, 2);
        assert_eq!(p.shape(), TensorShape::new(6, 6, 3));
        assert_eq!(p.count_spikes(), 1);
        assert!(p.get(2, 3, 2));
    }

    #[test]
    fn poisson_rate_tracks_intensity() {
        let mut rng = StdRng::seed_from_u64(42);
        let shape = TensorShape::new(16, 16, 3);
        let mut img = Tensor3::zeros(shape);
        img.data_mut().iter_mut().for_each(|v| *v = 0.25);
        let mut total = 0usize;
        let trials = 50;
        for _ in 0..trials {
            total += poisson_encode(&img, &mut rng).count_spikes();
        }
        let rate = total as f64 / (trials * shape.len()) as f64;
        assert!((rate - 0.25).abs() < 0.03, "empirical rate {rate}");
    }

    #[test]
    fn synthetic_image_is_in_unit_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let img = synthetic_image(TensorShape::new(32, 32, 3), &mut rng);
        assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // The image is not constant.
        let min = img.data().iter().cloned().fold(f32::INFINITY, f32::min);
        let max = img.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(max - min > 0.2);
    }

    #[test]
    fn direct_encode_is_identity() {
        let img = Tensor3::zeros(TensorShape::new(4, 4, 3));
        assert_eq!(direct_encode(&img), &img);
    }

    #[test]
    fn temporal_direct_encoding_repeats_the_image_every_step() {
        let mut rng = StdRng::seed_from_u64(3);
        let img = synthetic_image(TensorShape::new(8, 8, 3), &mut rng);
        let encoder = TemporalEncoder::new(&img, TemporalEncoding::Direct, 5);
        let mut out = Tensor3::zeros(img.shape());
        for step in 0..4 {
            encoder.encode_step_into(step, &mut out);
            assert_eq!(out, img, "direct coding is the image at step {step}");
        }
    }

    #[test]
    fn temporal_rate_encoding_is_binary_deterministic_and_step_varying() {
        let mut rng = StdRng::seed_from_u64(8);
        let img = synthetic_image(TensorShape::new(16, 16, 3), &mut rng);
        let encoder = TemporalEncoder::new(&img, TemporalEncoding::Rate, 11);
        let mut a = Tensor3::zeros(img.shape());
        let mut b = Tensor3::zeros(img.shape());
        encoder.encode_step_into(2, &mut a);
        encoder.encode_step_into(2, &mut b);
        assert_eq!(a, b, "the same step always encodes identically");
        assert!(a.data().iter().all(|&v| v == 0.0 || v == 1.0));
        encoder.encode_step_into(3, &mut b);
        assert_ne!(a, b, "different steps draw different spikes");
        // The tensor and spike-map views of one step agree.
        let spikes = encoder.encode_step_spikes(2);
        for (t, s) in a.data().iter().zip(spikes.to_bools()) {
            assert_eq!(*t != 0.0, s);
        }
    }

    #[test]
    fn temporal_rate_encoding_tracks_pixel_intensity() {
        let shape = TensorShape::new(16, 16, 3);
        let mut img = Tensor3::zeros(shape);
        img.data_mut().iter_mut().for_each(|v| *v = 0.3);
        let encoder = TemporalEncoder::new(&img, TemporalEncoding::Rate, 2);
        let steps = 64;
        let total: usize = (0..steps).map(|t| encoder.encode_step_spikes(t).count_spikes()).sum();
        let rate = total as f64 / (steps * shape.len()) as f64;
        assert!((rate - 0.3).abs() < 0.03, "empirical temporal rate {rate}");
    }
}
