//! Spike encodings for dense (image) inputs.
//!
//! Most directly-trained SNNs, including the S-VGG11 used by the paper, let
//! the first convolutional layer perform the encoding: the raw pixel values
//! are interpreted as input currents (direct encoding). A Poisson rate
//! encoding is also provided for event-style workloads and for the
//! multi-timestep accelerator comparison of Fig. 5.

use rand::Rng;

use crate::tensor::{SpikeMap, Tensor3, TensorShape};

/// Pad a dense image with `padding` zero pixels on each border (HWC layout).
pub fn pad_image(image: &Tensor3, padding: usize) -> Tensor3 {
    let s = image.shape();
    let padded_shape = TensorShape::new(s.h + 2 * padding, s.w + 2 * padding, s.c);
    let mut out = Tensor3::zeros(padded_shape);
    for h in 0..s.h {
        for w in 0..s.w {
            for c in 0..s.c {
                out.set(h + padding, w + padding, c, image.get(h, w, c));
            }
        }
    }
    out
}

/// Pad a spike map with a silent border of `padding` positions.
pub fn pad_spikes(map: &SpikeMap, padding: usize) -> SpikeMap {
    let s = map.shape();
    let padded_shape = TensorShape::new(s.h + 2 * padding, s.w + 2 * padding, s.c);
    let mut out = SpikeMap::silent(padded_shape);
    for h in 0..s.h {
        for w in 0..s.w {
            for c in 0..s.c {
                if map.get(h, w, c) {
                    out.set(h + padding, w + padding, c, true);
                }
            }
        }
    }
    out
}

/// Direct encoding: the image itself is the input-current tensor of the
/// first layer (values in `[0, 1]`). This is a no-op view kept as a named
/// function so call sites document their intent.
pub fn direct_encode(image: &Tensor3) -> &Tensor3 {
    image
}

/// Poisson rate encoding: each pixel spikes with probability equal to its
/// normalized intensity at every timestep.
pub fn poisson_encode<R: Rng>(image: &Tensor3, rng: &mut R) -> SpikeMap {
    let shape = image.shape();
    let spikes = image.data().iter().map(|&v| rng.gen::<f32>() < v.clamp(0.0, 1.0)).collect();
    SpikeMap::from_vec(shape, spikes)
}

/// Generate a synthetic CIFAR-10-like RGB image with smooth spatial
/// structure (values in `[0, 1]`), used by the examples and workloads.
pub fn synthetic_image<R: Rng>(shape: TensorShape, rng: &mut R) -> Tensor3 {
    let mut img = Tensor3::zeros(shape);
    // Low-frequency pattern plus noise so that direct encoding produces a
    // realistic mix of strong and weak input currents.
    let fx = rng.gen_range(0.5..2.0);
    let fy = rng.gen_range(0.5..2.0);
    for h in 0..shape.h {
        for w in 0..shape.w {
            for c in 0..shape.c {
                let base = 0.5
                    + 0.4
                        * ((h as f32 * fy / shape.h as f32 * std::f32::consts::TAU).sin()
                            * (w as f32 * fx / shape.w as f32 * std::f32::consts::TAU).cos());
                let noise: f32 = rng.gen_range(-0.1..0.1);
                img.set(h, w, c, (base + noise + c as f32 * 0.02).clamp(0.0, 1.0));
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn padding_preserves_interior_and_zeroes_border() {
        let mut img = Tensor3::zeros(TensorShape::new(2, 2, 1));
        img.set(0, 0, 0, 1.0);
        img.set(1, 1, 0, 2.0);
        let padded = pad_image(&img, 1);
        assert_eq!(padded.shape(), TensorShape::new(4, 4, 1));
        assert_eq!(padded.get(1, 1, 0), 1.0);
        assert_eq!(padded.get(2, 2, 0), 2.0);
        assert_eq!(padded.get(0, 0, 0), 0.0);
    }

    #[test]
    fn spike_padding_keeps_spike_count() {
        let mut m = SpikeMap::silent(TensorShape::new(2, 2, 3));
        m.set(0, 1, 2, true);
        let p = pad_spikes(&m, 2);
        assert_eq!(p.shape(), TensorShape::new(6, 6, 3));
        assert_eq!(p.count_spikes(), 1);
        assert!(p.get(2, 3, 2));
    }

    #[test]
    fn poisson_rate_tracks_intensity() {
        let mut rng = StdRng::seed_from_u64(42);
        let shape = TensorShape::new(16, 16, 3);
        let mut img = Tensor3::zeros(shape);
        img.data_mut().iter_mut().for_each(|v| *v = 0.25);
        let mut total = 0usize;
        let trials = 50;
        for _ in 0..trials {
            total += poisson_encode(&img, &mut rng).count_spikes();
        }
        let rate = total as f64 / (trials * shape.len()) as f64;
        assert!((rate - 0.25).abs() < 0.03, "empirical rate {rate}");
    }

    #[test]
    fn synthetic_image_is_in_unit_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let img = synthetic_image(TensorShape::new(32, 32, 3), &mut rng);
        assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // The image is not constant.
        let min = img.data().iter().cloned().fold(f32::INFINITY, f32::min);
        let max = img.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(max - min > 0.2);
    }

    #[test]
    fn direct_encode_is_identity() {
        let img = Tensor3::zeros(TensorShape::new(4, 4, 3));
        assert_eq!(direct_encode(&img), &img);
    }
}
