//! Dense tensors and bit-packed binary spike maps in HWC layout.
//!
//! The kernels use an HWC ("channel-last") memory layout so that the
//! weights of different output channels sit in contiguous memory and can be
//! batched across the SIMD lanes of the FPU (Section III-C of the paper).
//!
//! Spiking activations are binary, so [`SpikeMap`] packs them 64 neurons to
//! a `u64` word in HWC linear order (channel-fastest). Every consumer can
//! then operate word-at-a-time: popcounts for spike counting, trailing-zeros
//! scans for active-index iteration, and whole-word skips over silent
//! regions. Bits past `shape.len()` in the final word (the "slack" bits)
//! are always zero — the invariant that makes popcount and `Eq` exact.

use serde::{Deserialize, Serialize};

/// Bits per packed spike word.
pub const WORD_BITS: usize = 64;

/// A mask of the `bits` lowest bits (`bits` may be 0..=64).
#[inline]
fn low_mask(bits: usize) -> u64 {
    debug_assert!(bits <= WORD_BITS);
    if bits >= WORD_BITS {
        !0
    } else {
        (1u64 << bits) - 1
    }
}

/// Shape of a rank-3 activation tensor (height, width, channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
    /// Number of channels.
    pub c: usize,
}

impl TensorShape {
    /// Create a shape.
    pub fn new(h: usize, w: usize, c: usize) -> Self {
        TensorShape { h, w, c }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.h * self.w * self.c
    }

    /// Whether the shape is degenerate (any dimension zero).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(h, w, c)` in HWC layout.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn index(&self, h: usize, w: usize, c: usize) -> usize {
        debug_assert!(
            h < self.h && w < self.w && c < self.c,
            "index (h={h}, w={w}, c={c}) out of bounds for shape {self}"
        );
        assert!(h < self.h && w < self.w && c < self.c, "index out of bounds");
        (h * self.w + w) * self.c + c
    }

    /// Number of `u64` words needed to pack `len()` bits.
    pub fn word_count(&self) -> usize {
        self.len().div_ceil(WORD_BITS)
    }
}

impl std::fmt::Display for TensorShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "H={} W={} C={}", self.h, self.w, self.c)
    }
}

/// A dense rank-3 `f32` tensor in HWC layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor3 {
    shape: TensorShape,
    data: Vec<f32>,
}

impl Tensor3 {
    /// A zero-filled tensor of the given shape.
    pub fn zeros(shape: TensorShape) -> Self {
        Tensor3 { shape, data: vec![0.0; shape.len()] }
    }

    /// Build a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape.
    pub fn from_vec(shape: TensorShape, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), shape.len(), "data length must match shape");
        Tensor3 { shape, data }
    }

    /// The tensor shape.
    pub fn shape(&self) -> TensorShape {
        self.shape
    }

    /// Immutable view of the raw data (HWC order).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw data (HWC order).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Value at `(h, w, c)`.
    pub fn get(&self, h: usize, w: usize, c: usize) -> f32 {
        self.data[self.shape.index(h, w, c)]
    }

    /// Set the value at `(h, w, c)`.
    pub fn set(&mut self, h: usize, w: usize, c: usize, value: f32) {
        let idx = self.shape.index(h, w, c);
        self.data[idx] = value;
    }

    /// Number of non-zero elements.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }
}

/// A binary spike map (the sparse ifmap of one timestep) in HWC layout,
/// bit-packed 64 neurons per `u64` word.
///
/// Values are booleans since spiking activations carry no payload — which
/// is exactly why the compressed format can drop them (Section III-A) and
/// why the host representation can pack 64 of them per word. Bit `i % 64`
/// of word `i / 64` holds the neuron at HWC linear index `i`; bits at and
/// past `shape.len()` in the last word are always zero.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpikeMap {
    shape: TensorShape,
    words: Vec<u64>,
}

impl SpikeMap {
    /// A spike map with no active neurons.
    pub fn silent(shape: TensorShape) -> Self {
        SpikeMap { shape, words: vec![0; shape.word_count()] }
    }

    /// Build from a boolean vector in HWC order.
    ///
    /// # Panics
    ///
    /// Panics if `spikes.len()` does not match the shape.
    pub fn from_vec(shape: TensorShape, spikes: Vec<bool>) -> Self {
        assert_eq!(
            spikes.len(),
            shape.len(),
            "spike vector length {} must match shape {} ({} elements)",
            spikes.len(),
            shape,
            shape.len(),
        );
        SpikeMap::from_fn(shape, |i| spikes[i])
    }

    /// Build by evaluating `fired` at every HWC linear index in ascending
    /// order — the single packing path shared by the encoders, which keeps
    /// per-index RNG draw order identical to the unpacked representation.
    pub fn from_fn(shape: TensorShape, mut fired: impl FnMut(usize) -> bool) -> Self {
        let len = shape.len();
        let mut words = Vec::with_capacity(shape.word_count());
        let mut word = 0u64;
        let mut bit = 0usize;
        for idx in 0..len {
            if fired(idx) {
                word |= 1 << bit;
            }
            bit += 1;
            if bit == WORD_BITS {
                words.push(word);
                word = 0;
                bit = 0;
            }
        }
        if bit > 0 {
            words.push(word);
        }
        SpikeMap { shape, words }
    }

    /// Build from pre-packed words (bit `i % 64` of word `i / 64` is HWC
    /// linear index `i`). Slack bits in the last word are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` does not match `shape.word_count()`.
    pub fn from_words(shape: TensorShape, mut words: Vec<u64>) -> Self {
        assert_eq!(
            words.len(),
            shape.word_count(),
            "word vector length {} must match shape {} ({} words)",
            words.len(),
            shape,
            shape.word_count(),
        );
        let slack = shape.len() % WORD_BITS;
        if slack != 0 {
            if let Some(last) = words.last_mut() {
                *last &= low_mask(slack);
            }
        }
        SpikeMap { shape, words }
    }

    /// The map's shape.
    pub fn shape(&self) -> TensorShape {
        self.shape
    }

    /// The packed words (HWC linear order, 64 neurons per word; slack bits
    /// of the final word are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable packed words, for in-crate producers that write whole words
    /// (e.g. [`LifState::step_into_map`]). Writers must preserve the
    /// slack-bit invariant.
    ///
    /// [`LifState::step_into_map`]: crate::neuron::LifState::step_into_map
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Whether the neuron at `(h, w, c)` fired.
    pub fn get(&self, h: usize, w: usize, c: usize) -> bool {
        let idx = self.shape.index(h, w, c);
        (self.words[idx / WORD_BITS] >> (idx % WORD_BITS)) & 1 != 0
    }

    /// Set the spike at `(h, w, c)`.
    pub fn set(&mut self, h: usize, w: usize, c: usize, fired: bool) {
        let idx = self.shape.index(h, w, c);
        let mask = 1u64 << (idx % WORD_BITS);
        if fired {
            self.words[idx / WORD_BITS] |= mask;
        } else {
            self.words[idx / WORD_BITS] &= !mask;
        }
    }

    /// Unpack into one `bool` per neuron in HWC order.
    pub fn to_bools(&self) -> Vec<bool> {
        let len = self.shape.len();
        (0..len).map(|i| (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 != 0).collect()
    }

    /// Number of spikes in the map (a popcount over the packed words).
    pub fn count_spikes(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of neurons that fired (the layer's firing rate).
    pub fn firing_rate(&self) -> f64 {
        let len = self.shape.len();
        if len == 0 {
            0.0
        } else {
            self.count_spikes() as f64 / len as f64
        }
    }

    /// Iterate the HWC linear indices of all active neurons in ascending
    /// order, by scanning trailing zeros word-by-word. Silent words cost a
    /// single comparison, so iteration time scales with the spike count
    /// plus the word count — not the neuron count.
    pub fn iter_active(&self) -> ActiveBits<'_> {
        self.active_bits_range(0, self.shape.len())
    }

    /// Iterate the active channel indices at spatial position `(h, w)` in
    /// ascending order — one "fiber" of the compressed representation,
    /// without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `(h, w)` is out of range.
    pub fn active_channels_iter(&self, h: usize, w: usize) -> ActiveChannels<'_> {
        assert!(h < self.shape.h && w < self.shape.w, "position (h={h}, w={w}) out of bounds");
        let base = (h * self.shape.w + w) * self.shape.c;
        ActiveChannels { bits: self.active_bits_range(base, base + self.shape.c), base }
    }

    /// Channel indices of the active neurons at spatial position `(h, w)`,
    /// in ascending order.
    #[deprecated(
        since = "0.6.0",
        note = "allocates a Vec per call; use the borrowed `active_channels_iter` instead"
    )]
    pub fn active_channels(&self, h: usize, w: usize) -> Vec<u32> {
        self.active_channels_iter(h, w).collect()
    }

    /// Active-bit iterator over the linear index range `[start, end)`.
    fn active_bits_range(&self, start: usize, end: usize) -> ActiveBits<'_> {
        let end = end.min(self.shape.len());
        if start >= end {
            return ActiveBits { rest: &[], word: 0, word_base: 0, end: 0 };
        }
        let first = start / WORD_BITS;
        let last = (end - 1) / WORD_BITS;
        let mut word = self.words[first] & (!0u64 << (start % WORD_BITS));
        word &= low_mask((end - first * WORD_BITS).min(WORD_BITS));
        ActiveBits { rest: &self.words[first + 1..=last], word, word_base: first * WORD_BITS, end }
    }

    /// OR the bit range `[start, start + len)` into `out`, with bit 0 of
    /// `out[0]` corresponding to linear index `start`. Used by the
    /// word-parallel pooling and padding paths.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the range or `out` is too small.
    pub fn or_range_into(&self, start: usize, len: usize, out: &mut [u64]) {
        debug_assert!(start + len <= self.shape.len(), "bit range out of bounds");
        if len == 0 {
            return;
        }
        let n_out = len.div_ceil(WORD_BITS);
        debug_assert!(out.len() >= n_out, "output word buffer too small");
        let shift = start % WORD_BITS;
        let first = start / WORD_BITS;
        for (i, slot) in out.iter_mut().enumerate().take(n_out) {
            let lo = self.words.get(first + i).copied().unwrap_or(0) >> shift;
            let hi = if shift == 0 {
                0
            } else {
                self.words.get(first + i + 1).copied().unwrap_or(0) << (WORD_BITS - shift)
            };
            let mut v = lo | hi;
            if i == n_out - 1 {
                v &= low_mask(len - i * WORD_BITS);
            }
            *slot |= v;
        }
    }

    /// OR `len` bits from `src` (bit 0 of `src[0]` first) into this map at
    /// linear index `start`. The inverse of [`or_range_into`]; the written
    /// range must lie inside the map, preserving the slack-bit invariant.
    ///
    /// [`or_range_into`]: SpikeMap::or_range_into
    pub fn or_range_from(&mut self, start: usize, len: usize, src: &[u64]) {
        debug_assert!(start + len <= self.shape.len(), "bit range out of bounds");
        if len == 0 {
            return;
        }
        let n_src = len.div_ceil(WORD_BITS);
        debug_assert!(src.len() >= n_src, "source word buffer too small");
        for (i, &raw) in src.iter().enumerate().take(n_src) {
            let rem = (len - i * WORD_BITS).min(WORD_BITS);
            let s = raw & low_mask(rem);
            let base = start + i * WORD_BITS;
            let wi = base / WORD_BITS;
            let sh = base % WORD_BITS;
            self.words[wi] |= s << sh;
            if sh > 0 {
                let spill = s >> (WORD_BITS - sh);
                if spill != 0 {
                    self.words[wi + 1] |= spill;
                }
            }
        }
    }
}

/// Zero-allocation iterator over the active HWC linear indices of a
/// [`SpikeMap`] range, produced by [`SpikeMap::iter_active`]. Each word is
/// drained with a trailing-zeros scan (`word &= word - 1` clears the bit
/// just visited), so wholly silent words are skipped in one comparison.
#[derive(Debug, Clone)]
pub struct ActiveBits<'a> {
    rest: &'a [u64],
    word: u64,
    word_base: usize,
    end: usize,
}

impl Iterator for ActiveBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.word != 0 {
                let tz = self.word.trailing_zeros() as usize;
                self.word &= self.word - 1;
                return Some(self.word_base + tz);
            }
            let (&next, rest) = self.rest.split_first()?;
            self.rest = rest;
            self.word_base += WORD_BITS;
            let room = self.end - self.word_base;
            self.word = next & low_mask(room.min(WORD_BITS));
        }
    }
}

impl std::iter::FusedIterator for ActiveBits<'_> {}

/// Zero-allocation iterator over the active channels of one spatial
/// position, produced by [`SpikeMap::active_channels_iter`]. Yields channel
/// indices as `u32` in ascending order.
#[derive(Debug, Clone)]
pub struct ActiveChannels<'a> {
    bits: ActiveBits<'a>,
    base: usize,
}

impl Iterator for ActiveChannels<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        self.bits.next().map(|idx| (idx - self.base) as u32)
    }
}

impl std::iter::FusedIterator for ActiveChannels<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hwc_indexing_is_channel_fastest() {
        let s = TensorShape::new(2, 3, 4);
        assert_eq!(s.index(0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 3), 3);
        assert_eq!(s.index(0, 1, 0), 4);
        assert_eq!(s.index(1, 0, 0), 12);
        assert_eq!(s.len(), 24);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_panics() {
        TensorShape::new(2, 2, 2).index(2, 0, 0);
    }

    #[test]
    fn tensor_get_set_round_trip() {
        let mut t = Tensor3::zeros(TensorShape::new(3, 3, 2));
        t.set(1, 2, 1, 7.5);
        assert_eq!(t.get(1, 2, 1), 7.5);
        assert_eq!(t.count_nonzero(), 1);
    }

    #[test]
    fn spike_map_counts_and_rates() {
        let mut m = SpikeMap::silent(TensorShape::new(2, 2, 4));
        assert_eq!(m.firing_rate(), 0.0);
        m.set(0, 0, 1, true);
        m.set(1, 1, 3, true);
        assert_eq!(m.count_spikes(), 2);
        assert!((m.firing_rate() - 2.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn active_channels_are_sorted() {
        let mut m = SpikeMap::silent(TensorShape::new(1, 1, 8));
        for c in [5, 1, 7] {
            m.set(0, 0, c, true);
        }
        let channels: Vec<u32> = m.active_channels_iter(0, 0).collect();
        assert_eq!(channels, vec![1, 5, 7]);
        assert!(channels.windows(2).all(|w| w[0] < w[1]));
        #[allow(deprecated)]
        let allocated = m.active_channels(0, 0);
        assert_eq!(allocated, channels, "deprecated API stays in parity with the iterator");
    }

    #[test]
    fn active_channels_iter_crosses_word_boundaries() {
        // 100 channels per position: the fiber of position (0, 1) spans the
        // packed words [100, 200), crossing two word boundaries.
        let mut m = SpikeMap::silent(TensorShape::new(1, 3, 100));
        for c in [0, 27, 63, 64, 99] {
            m.set(0, 1, c, true);
        }
        // Neighbours fully lit must not leak into the middle fiber.
        for c in 0..100 {
            m.set(0, 0, c, true);
            m.set(0, 2, c, true);
        }
        let channels: Vec<u32> = m.active_channels_iter(0, 1).collect();
        assert_eq!(channels, vec![0, 27, 63, 64, 99]);
    }

    #[test]
    fn iter_active_yields_linear_indices_in_order() {
        let shape = TensorShape::new(2, 2, 40); // 160 bits = 2.5 words
        let mut m = SpikeMap::silent(shape);
        let active = [0usize, 1, 63, 64, 65, 127, 128, 159];
        for &i in &active {
            let (w, c) = (shape.w, shape.c);
            m.set(i / (w * c), (i / c) % w, i % c, true);
        }
        let got: Vec<usize> = m.iter_active().collect();
        assert_eq!(got, active);
    }

    #[test]
    fn slack_bits_stay_clear_under_all_constructors() {
        // 65 bits: one full word plus one slack-heavy word.
        let shape = TensorShape::new(1, 1, 65);
        let all = SpikeMap::from_vec(shape, vec![true; 65]);
        assert_eq!(all.count_spikes(), 65);
        assert_eq!(all.words()[1], 1, "slack bits of the final word must be zero");

        // from_words masks slack bits out.
        let masked = SpikeMap::from_words(shape, vec![!0u64, !0u64]);
        assert_eq!(masked.count_spikes(), 65);
        assert_eq!(masked, all, "Eq must not observe slack bits");

        // silent + set/clear keeps the invariant.
        let mut m = SpikeMap::silent(shape);
        m.set(0, 0, 64, true);
        m.set(0, 0, 64, false);
        assert_eq!(m.count_spikes(), 0);
        assert!(m.words().iter().all(|&w| w == 0));
    }

    #[test]
    fn from_words_round_trips_packed_words() {
        let shape = TensorShape::new(1, 2, 64);
        let words = vec![0xDEAD_BEEF_0BAD_F00Du64, 0x1234_5678_9ABC_DEF0u64];
        let m = SpikeMap::from_words(shape, words.clone());
        assert_eq!(m.words(), &words[..]);
        let round = SpikeMap::from_vec(shape, m.to_bools());
        assert_eq!(round, m);
    }

    #[test]
    fn or_range_round_trips_unaligned_ranges() {
        let shape = TensorShape::new(3, 3, 30); // rows of 90 bits at odd offsets
        let mut m = SpikeMap::silent(shape);
        for i in [0usize, 31, 63, 64, 89] {
            m.set(1, i / 30, i % 30, true); // row 1 = bits [90, 180)
        }
        let mut buf = vec![0u64; 2];
        m.or_range_into(90, 90, &mut buf);
        let mut copy = SpikeMap::silent(shape);
        copy.or_range_from(180, 90, &buf); // shift row 1 into row 2
        let expect: Vec<usize> = m.iter_active().map(|i| i + 90).collect();
        let got: Vec<usize> = copy.iter_active().collect();
        assert_eq!(got, expect);
    }

    #[test]
    #[should_panic(expected = "spike vector length 3 must match shape H=1 W=1 C=4 (4 elements)")]
    fn from_vec_reports_both_lengths() {
        SpikeMap::from_vec(TensorShape::new(1, 1, 4), vec![false; 3]);
    }
}
