//! Dense tensors and binary spike maps in HWC layout.
//!
//! The kernels use an HWC ("channel-last") memory layout so that the
//! weights of different output channels sit in contiguous memory and can be
//! batched across the SIMD lanes of the FPU (Section III-C of the paper).

use serde::{Deserialize, Serialize};

/// Shape of a rank-3 activation tensor (height, width, channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
    /// Number of channels.
    pub c: usize,
}

impl TensorShape {
    /// Create a shape.
    pub fn new(h: usize, w: usize, c: usize) -> Self {
        TensorShape { h, w, c }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.h * self.w * self.c
    }

    /// Whether the shape is degenerate (any dimension zero).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(h, w, c)` in HWC layout.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn index(&self, h: usize, w: usize, c: usize) -> usize {
        assert!(h < self.h && w < self.w && c < self.c, "index out of bounds");
        (h * self.w + w) * self.c + c
    }
}

impl std::fmt::Display for TensorShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "H={} W={} C={}", self.h, self.w, self.c)
    }
}

/// A dense rank-3 `f32` tensor in HWC layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor3 {
    shape: TensorShape,
    data: Vec<f32>,
}

impl Tensor3 {
    /// A zero-filled tensor of the given shape.
    pub fn zeros(shape: TensorShape) -> Self {
        Tensor3 { shape, data: vec![0.0; shape.len()] }
    }

    /// Build a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape.
    pub fn from_vec(shape: TensorShape, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), shape.len(), "data length must match shape");
        Tensor3 { shape, data }
    }

    /// The tensor shape.
    pub fn shape(&self) -> TensorShape {
        self.shape
    }

    /// Immutable view of the raw data (HWC order).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw data (HWC order).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Value at `(h, w, c)`.
    pub fn get(&self, h: usize, w: usize, c: usize) -> f32 {
        self.data[self.shape.index(h, w, c)]
    }

    /// Set the value at `(h, w, c)`.
    pub fn set(&mut self, h: usize, w: usize, c: usize, value: f32) {
        let idx = self.shape.index(h, w, c);
        self.data[idx] = value;
    }

    /// Number of non-zero elements.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }
}

/// A binary spike map (the sparse ifmap of one timestep) in HWC layout.
///
/// Values are booleans since spiking activations carry no payload — which
/// is exactly why the compressed format can drop them (Section III-A).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpikeMap {
    shape: TensorShape,
    spikes: Vec<bool>,
}

impl SpikeMap {
    /// A spike map with no active neurons.
    pub fn silent(shape: TensorShape) -> Self {
        SpikeMap { shape, spikes: vec![false; shape.len()] }
    }

    /// Build from a boolean vector in HWC order.
    ///
    /// # Panics
    ///
    /// Panics if `spikes.len()` does not match the shape.
    pub fn from_vec(shape: TensorShape, spikes: Vec<bool>) -> Self {
        assert_eq!(spikes.len(), shape.len(), "spike vector length must match shape");
        SpikeMap { shape, spikes }
    }

    /// The map's shape.
    pub fn shape(&self) -> TensorShape {
        self.shape
    }

    /// Whether the neuron at `(h, w, c)` fired.
    pub fn get(&self, h: usize, w: usize, c: usize) -> bool {
        self.spikes[self.shape.index(h, w, c)]
    }

    /// Set the spike at `(h, w, c)`.
    pub fn set(&mut self, h: usize, w: usize, c: usize, fired: bool) {
        let idx = self.shape.index(h, w, c);
        self.spikes[idx] = fired;
    }

    /// Raw boolean data in HWC order.
    pub fn data(&self) -> &[bool] {
        &self.spikes
    }

    /// Number of spikes in the map.
    pub fn count_spikes(&self) -> usize {
        self.spikes.iter().filter(|&&s| s).count()
    }

    /// Fraction of neurons that fired (the layer's firing rate).
    pub fn firing_rate(&self) -> f64 {
        if self.spikes.is_empty() {
            0.0
        } else {
            self.count_spikes() as f64 / self.spikes.len() as f64
        }
    }

    /// Channel indices of the active neurons at spatial position `(h, w)`,
    /// in ascending order — one "fiber" of the compressed representation.
    pub fn active_channels(&self, h: usize, w: usize) -> Vec<u32> {
        (0..self.shape.c).filter(|&c| self.get(h, w, c)).map(|c| c as u32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hwc_indexing_is_channel_fastest() {
        let s = TensorShape::new(2, 3, 4);
        assert_eq!(s.index(0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 3), 3);
        assert_eq!(s.index(0, 1, 0), 4);
        assert_eq!(s.index(1, 0, 0), 12);
        assert_eq!(s.len(), 24);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_panics() {
        TensorShape::new(2, 2, 2).index(2, 0, 0);
    }

    #[test]
    fn tensor_get_set_round_trip() {
        let mut t = Tensor3::zeros(TensorShape::new(3, 3, 2));
        t.set(1, 2, 1, 7.5);
        assert_eq!(t.get(1, 2, 1), 7.5);
        assert_eq!(t.count_nonzero(), 1);
    }

    #[test]
    fn spike_map_counts_and_rates() {
        let mut m = SpikeMap::silent(TensorShape::new(2, 2, 4));
        assert_eq!(m.firing_rate(), 0.0);
        m.set(0, 0, 1, true);
        m.set(1, 1, 3, true);
        assert_eq!(m.count_spikes(), 2);
        assert!((m.firing_rate() - 2.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn active_channels_are_sorted() {
        let mut m = SpikeMap::silent(TensorShape::new(1, 1, 8));
        for c in [5, 1, 7] {
            m.set(0, 0, c, true);
        }
        assert_eq!(m.active_channels(0, 0), vec![1, 5, 7]);
        assert!(m.active_channels(0, 0).windows(2).all(|w| w[0] < w[1]));
    }
}
