//! Quickstart: run the S-VGG11 network with both code variants and print
//! the end-to-end comparison the paper's abstract is built on.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spikestream::{Engine, FpFormat, InferenceConfig, KernelVariant, TimingModel, WorkloadMode};

fn main() {
    let engine = Engine::svgg11(42);
    let batch = 16;

    let run = |variant, format| {
        engine.run(&InferenceConfig {
            variant,
            format,
            timing: TimingModel::Analytic,
            batch,
            seed: 7,
            mode: WorkloadMode::Synthetic,
        })
    };

    let baseline = run(KernelVariant::Baseline, FpFormat::Fp16);
    let streamed16 = run(KernelVariant::SpikeStream, FpFormat::Fp16);
    let streamed8 = run(KernelVariant::SpikeStream, FpFormat::Fp8);

    println!("S-VGG11 single-timestep inference, batch of {batch} synthetic CIFAR-10 frames\n");
    println!(
        "{:<26} {:>14} {:>12} {:>12} {:>12}",
        "configuration", "cycles", "time [ms]", "FPU util", "energy [mJ]"
    );
    for (name, report) in [
        ("Baseline FP16", &baseline),
        ("SpikeStream FP16", &streamed16),
        ("SpikeStream FP8", &streamed8),
    ] {
        println!(
            "{:<26} {:>14.0} {:>12.3} {:>11.1}% {:>12.3}",
            name,
            report.total_cycles(),
            report.total_seconds() * 1e3,
            report.average_utilization() * 100.0,
            report.total_energy_j() * 1e3
        );
    }

    println!();
    println!("SpikeStream FP16 speedup over baseline: {:.2}x", streamed16.speedup_over(&baseline));
    println!("SpikeStream FP8  speedup over baseline: {:.2}x", streamed8.speedup_over(&baseline));
    println!(
        "Energy-efficiency gain (FP8 vs baseline): {:.2}x",
        streamed8.energy_gain_over(&baseline)
    );
}
