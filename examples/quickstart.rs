//! Quickstart: compile the S-VGG11 network into serving plans for both
//! code variants and print the end-to-end comparison the paper's abstract
//! is built on.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spikestream::{
    Engine, FpFormat, InferenceConfig, KernelVariant, Request, TimingModel, WorkloadMode,
};

fn main() {
    let engine = Engine::svgg11(42);
    let batch = 16;

    // Compile once per configuration: validation, backend binding and the
    // ahead-of-time lowering of every layer's stream program happen here.
    let compile = |variant, format| {
        engine.compile(&InferenceConfig {
            variant,
            format,
            timing: TimingModel::Analytic,
            batch,
            seed: 7,
            mode: WorkloadMode::Synthetic,
        })
    };
    // Then serve: a session owns the worker arenas and answers requests
    // against the plan's cached programs. (The legacy form — the
    // deprecated `engine.run(&config)` — still works and produces the
    // bit-identical report, as a one-shot wrapper over exactly this path.)
    let serve =
        |variant, format| compile(variant, format).open_session().infer(&Request::batch(batch));

    let baseline = serve(KernelVariant::Baseline, FpFormat::Fp16);
    let streamed16 = serve(KernelVariant::SpikeStream, FpFormat::Fp16);
    let streamed8 = serve(KernelVariant::SpikeStream, FpFormat::Fp8);

    println!("S-VGG11 single-timestep inference, batch of {batch} synthetic CIFAR-10 frames\n");
    println!(
        "{:<26} {:>14} {:>12} {:>12} {:>12}",
        "configuration", "cycles", "time [ms]", "FPU util", "energy [mJ]"
    );
    for (name, report) in [
        ("Baseline FP16", &baseline),
        ("SpikeStream FP16", &streamed16),
        ("SpikeStream FP8", &streamed8),
    ] {
        println!(
            "{:<26} {:>14.0} {:>12.3} {:>11.1}% {:>12.3}",
            name,
            report.total_cycles(),
            report.total_seconds() * 1e3,
            report.average_utilization() * 100.0,
            report.total_energy_j() * 1e3
        );
    }

    println!();
    println!("SpikeStream FP16 speedup over baseline: {:.2}x", streamed16.speedup_over(&baseline));
    println!("SpikeStream FP8  speedup over baseline: {:.2}x", streamed8.speedup_over(&baseline));
    println!(
        "Energy-efficiency gain (FP8 vs baseline): {:.2}x",
        streamed8.energy_gain_over(&baseline)
    );
}
