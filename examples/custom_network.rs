//! Build a custom spiking CNN and run it through an explicit execution
//! backend.
//!
//! This example exercises the lower-level APIs directly: network
//! construction, explicit backend binding via `Compiler::with_backend`
//! (here the cycle-level backend, which drives the kernels through the
//! `LayerExecutor` dispatch), and the per-layer report. Third-party
//! backends — accelerator models, event-driven simulators — bind into a
//! plan the same way without touching the engine.
//!
//! ```text
//! cargo run --release --example custom_network
//! ```

use spikestream::{
    CycleLevelBackend, Engine, FiringProfile, FpFormat, InferenceConfig, KernelVariant, Request,
    TimingModel, WorkloadMode,
};
use spikestream_snn::neuron::LifParams;
use spikestream_snn::tensor::TensorShape;
use spikestream_snn::{ConvSpec, LinearSpec, NetworkBuilder};

fn main() {
    // A small event-camera-style network: two conv layers and a classifier.
    let lif = LifParams::new(0.6, 0.4);
    let mut network = NetworkBuilder::new("dvs-tiny")
        .conv(
            "conv1",
            ConvSpec {
                input: TensorShape::new(16, 16, 2),
                out_channels: 16,
                kh: 3,
                kw: 3,
                stride: 1,
                padding: 1,
                pool: true,
            },
            lif,
        )
        .conv(
            "conv2",
            ConvSpec {
                input: TensorShape::new(8, 8, 16),
                out_channels: 32,
                kh: 3,
                kw: 3,
                stride: 1,
                padding: 1,
                pool: true,
            },
            lif,
        )
        .linear("fc3", LinearSpec { in_features: 4 * 4 * 32, out_features: 10 }, lif)
        .build_with_random_weights(1234, 0.1);
    network.layers_mut()[0].encodes_input = true;
    network.validate().expect("layer shapes chain");

    // Event-camera inputs are moderately sparse everywhere.
    let profile = FiringProfile::uniform(network.len(), 0.2);
    let engine = Engine::new(network, profile);

    println!("Custom network on the Snitch cluster (cycle-level backend)\n");
    for variant in [KernelVariant::Baseline, KernelVariant::SpikeStream] {
        // Equivalent to compiling with `timing: TimingModel::CycleLevel`;
        // spelled out to show where custom backends bind into a plan.
        let plan = engine
            .compiler()
            .with_backend(Box::new(CycleLevelBackend))
            .compile(InferenceConfig {
                variant,
                format: FpFormat::Fp16,
                timing: TimingModel::CycleLevel,
                batch: 2,
                seed: 3,
                mode: WorkloadMode::Synthetic,
            })
            .expect("network and profile compile");
        let report = plan.open_session().infer(&Request::batch(2));
        println!("{variant}:");
        for layer in &report.layers {
            println!(
                "  {:<8} {:>10.0} cycles  util {:>5.1}%  IPC {:>4.2}  {:>8.2} uJ",
                layer.name,
                layer.cycles,
                layer.fpu_utilization * 100.0,
                layer.ipc,
                layer.energy_j * 1e6
            );
        }
        println!(
            "  total: {:.0} cycles ({:.3} ms)\n",
            report.total_cycles(),
            report.total_seconds() * 1e3
        );
    }
}
