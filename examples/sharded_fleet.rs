//! Sharded fleet example: spread the paper's 128-sample S-VGG11 batch over
//! eight simulated clusters and inspect the fleet statistics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sharded_fleet
//! ```
//!
//! The same experiment is available declaratively through the CLI:
//!
//! ```text
//! cargo run --release --bin spikestream -- run examples/scenarios/svgg11_fp16.toml
//! ```

use spikestream_repro::core::{
    Engine, FpFormat, InferenceConfig, KernelVariant, Request, TimingModel, WorkloadMode,
};

fn main() {
    let engine = Engine::svgg11(42);
    let config = InferenceConfig {
        variant: KernelVariant::SpikeStream,
        format: FpFormat::Fp16,
        timing: TimingModel::Analytic,
        batch: 128,
        seed: 0xC1FA,
        mode: WorkloadMode::Synthetic,
    };

    // Compile once; one session serves both the sharded and the sequential
    // request from the same plan-owned program cache.
    let plan = engine.compile(&config);
    let mut session = plan.open_session();
    let sharded = session.infer(&Request::batch(config.batch).with_shards(8));
    let sequential = session.infer(&Request::batch(config.batch).sequential());

    println!("S-VGG11 · SpikeStream · FP16 · batch 128 over 8 cluster shards\n");
    let fleet = sharded.shards.as_ref().expect("sharded runs carry fleet stats");
    println!("{:>6} {:>9} {:>18} {:>12}", "shard", "samples", "busy [cycles]", "utilization");
    for shard in &fleet.shards {
        println!(
            "{:>6} {:>9} {:>18.0} {:>12.3}",
            shard.shard, shard.samples, shard.busy_cycles, shard.utilization
        );
    }
    println!(
        "\nmakespan {:.0} cycles · effective speedup {:.2}x · imbalance {:.3}",
        fleet.makespan_cycles, fleet.batch_speedup, fleet.imbalance
    );

    // The fleet is a pure refinement: aggregates match the sequential
    // reference bit for bit.
    assert_eq!(sharded.clone().without_shard_stats(), sequential);
    println!("aggregate report bit-identical to the sequential engine: yes");
}
