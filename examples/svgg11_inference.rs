//! Per-layer walk through an S-VGG11 inference: prints, for every layer,
//! the firing activity, runtime, utilization and energy of the baseline and
//! SpikeStream kernels — i.e. the raw material of Figs. 3 and 4.
//!
//! ```text
//! cargo run --release --example svgg11_inference -- [batch]
//! ```

use spikestream::{Engine, FpFormat, InferenceConfig, KernelVariant, TimingModel, WorkloadMode};

fn main() {
    let batch: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(16);
    let engine = Engine::svgg11(42);

    let run = |variant| {
        engine
            .compile(&InferenceConfig {
                variant,
                format: FpFormat::Fp16,
                timing: TimingModel::Analytic,
                batch,
                seed: 11,
                mode: WorkloadMode::Synthetic,
            })
            .run()
    };
    let baseline = run(KernelVariant::Baseline);
    let streamed = run(KernelVariant::SpikeStream);

    println!("S-VGG11 per-layer breakdown (FP16, batch {batch})\n");
    println!(
        "{:<8} {:>8} {:>14} {:>14} {:>9} {:>10} {:>10} {:>10}",
        "layer",
        "firing",
        "base cycles",
        "strm cycles",
        "speedup",
        "base util",
        "strm util",
        "E gain"
    );
    for (b, s) in baseline.layers.iter().zip(streamed.layers.iter()) {
        println!(
            "{:<8} {:>7.1}% {:>14.0} {:>14.0} {:>8.2}x {:>9.1}% {:>9.1}% {:>9.2}x",
            b.name,
            b.input_firing_rate * 100.0,
            b.cycles,
            s.cycles,
            b.cycles / s.cycles.max(1.0),
            b.fpu_utilization * 100.0,
            s.fpu_utilization * 100.0,
            b.energy_j / s.energy_j.max(f64::MIN_POSITIVE),
        );
    }

    println!(
        "\nEnd to end: {:.2}x faster, utilization {:.1}% -> {:.1}%, {:.2}x less energy",
        streamed.speedup_over(&baseline),
        baseline.average_utilization() * 100.0,
        streamed.average_utilization() * 100.0,
        streamed.energy_gain_over(&baseline)
    );
}
