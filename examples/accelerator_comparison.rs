//! Comparison against the state-of-the-art neuromorphic accelerators on
//! the 6th S-VGG11 layer over 500 timesteps (Fig. 5 of the paper).
//!
//! ```text
//! cargo run --release --example accelerator_comparison
//! ```

use spikestream::experiments::fig5_accelerators;

fn main() {
    let rows = fig5_accelerators(500, 16);
    println!("6th S-VGG11 layer, 500 timesteps, CIFAR-10\n");
    println!(
        "{:<34} {:>14} {:>14} {:>10} {:>8}",
        "platform", "latency [ms]", "energy [mJ]", "peak GSOP", "tech"
    );
    for r in &rows {
        println!(
            "{:<34} {:>14.2} {:>14.2} {:>10.1} {:>6} nm",
            r.name, r.latency_ms, r.energy_mj, r.peak_gsop, r.technology_nm
        );
    }

    let ours = rows.iter().find(|r| r.name.contains("SpikeStream FP8")).expect("FP8 row present");
    let lsm = rows.iter().find(|r| r.name == "LSMCore").expect("LSMCore row present");
    let loihi = rows.iter().find(|r| r.name == "Loihi").expect("Loihi row present");
    println!();
    println!("SpikeStream FP8 vs Loihi:   {:.2}x faster", loihi.latency_ms / ours.latency_ms);
    println!(
        "SpikeStream FP8 vs LSMCore: {:.2}x slower, {:.2}x more energy-efficient",
        ours.latency_ms / lsm.latency_ms,
        lsm.energy_mj / ours.energy_mj
    );
}
